//! The `spackled` wire protocol: line-delimited JSON over a stream.
//!
//! Each request is one JSON object on one line; the server answers with
//! exactly one JSON object on one line. Both shapes are *flat* structs
//! whose fields all carry defaults, so either side may omit anything it
//! does not use and old clients keep working against newer servers (and
//! vice versa) — unknown fields are ignored, missing fields default.
//!
//! Operations (`op`):
//!
//! | op           | request fields              | response fields |
//! |--------------|-----------------------------|-----------------|
//! | `ping`       | —                           | `ok`, `protocol` |
//! | `concretize` | `spec` or `roots`, `forbid`, `config`, `explain` | `hashes`, `reused`, `built`, `spliced`, `ground_cache_hit`, `solve_ms`, `conflicts`, `decisions`, `propagations`, `restarts`; on unsat with `explain`: `explanation`, `explain_minimal`, `explain_core_size`, `explain_probes` |
//! | `last`       | —                           | the previous concretize response for this connection |
//! | `set-config` | `config`                    | `ok` (session default updated) |
//! | `audit`      | —                           | `audit_errors`, `audit_warnings`, `audit_report` |
//! | `stats`      | —                           | telemetry + ground-cache counters + `repo_revision` |
//! | `update`     | `package`, `version`        | `repo_revision`, `segments_changed`, `invalidated` (entries whose segments moved), `retained` (entries kept warm) |
//! | `invalidate` | —                           | `invalidated` (entries dropped), `repo_revision` (new) |
//! | `shutdown`   | —                           | `ok`; the server stops accepting and drains |
//!
//! `update` is the *delta* primitive: it declares one new version on an
//! existing package (appended, so least preferred — existing solutions
//! are unchanged), republishes the repository, and partially invalidates
//! the warm ground cache by segment fingerprint. Goals whose encode
//! closure avoids the touched package keep hitting their retained
//! entries; `invalidate` remains the blanket *reload* primitive.
//!
//! `config` names a [`spackle_core::ConcretizerConfig`] preset:
//! `"splice"` (default), `"no-splice"`, `"old"`, or the deliberately
//! inconsistent `"old+splice"` (used to exercise the structured
//! `CoreError::Config` path end-to-end). An empty string means "use the
//! session default" (see `session.rs`).

use serde::{Deserialize, Serialize};

/// Wire protocol revision; echoed in every `ping` response.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on one request line, in bytes. A line longer than this is
/// rejected without parsing (protects the server from unbounded reads).
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// One client request. Flat on purpose: every field defaults, `op`
/// selects the operation and the other fields parameterize it.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Request {
    /// Operation name (see module docs).
    #[serde(default)]
    pub op: String,
    /// Client-chosen correlation id, echoed verbatim in the response.
    #[serde(default)]
    pub id: u64,
    /// Single-root goal spec text (`concretize`).
    #[serde(default)]
    pub spec: String,
    /// Multi-root goal spec texts (`concretize`; wins over `spec` when
    /// non-empty).
    #[serde(default)]
    pub roots: Vec<String>,
    /// Package names forbidden from the solution (`concretize`).
    #[serde(default)]
    pub forbid: Vec<String>,
    /// Configuration preset name (`concretize`, `set-config`).
    #[serde(default)]
    pub config: String,
    /// Per-request wall-clock deadline in milliseconds (`concretize`);
    /// 0 means no deadline beyond the server's default. An expired
    /// deadline answers `ok:false` with `error_kind:"timeout"`.
    #[serde(default)]
    pub timeout_ms: u64,
    /// Ask for a provenance-mapped unsat core when a `concretize`
    /// fails with `error_kind:"unsat"` (`explanation` and the
    /// `explain_*` response fields). Costs nothing on satisfiable
    /// goals.
    #[serde(default)]
    pub explain: bool,
    /// Package receiving a new version (`update`).
    #[serde(default)]
    pub package: String,
    /// The version to declare on `package` (`update`). Appended to the
    /// declared list, so it ranks least preferred and existing
    /// solutions are unchanged.
    #[serde(default)]
    pub version: String,
}

impl Request {
    /// A request with only `op` set.
    pub fn op(op: &str) -> Request {
        Request {
            op: op.to_string(),
            ..Request::default()
        }
    }

    /// A single-root concretize request.
    pub fn concretize(spec: &str) -> Request {
        Request {
            spec: spec.to_string(),
            ..Request::op("concretize")
        }
    }

    /// Attach a correlation id.
    pub fn with_id(mut self, id: u64) -> Request {
        self.id = id;
        self
    }

    /// Select a configuration preset.
    pub fn with_config(mut self, config: &str) -> Request {
        self.config = config.to_string();
        self
    }

    /// Serialize as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("request serializes")
    }

    /// Parse one protocol line.
    pub fn from_line(line: &str) -> Result<Request, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

/// One server response. Flat like [`Request`]; consult the fields your
/// `op` populates and ignore the rest (they hold defaults).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Response {
    /// Did the operation succeed? When `false`, `error` explains why.
    #[serde(default)]
    pub ok: bool,
    /// Correlation id copied from the request.
    #[serde(default)]
    pub id: u64,
    /// Operation this answers (copied from the request).
    #[serde(default)]
    pub op: String,
    /// Protocol revision (`ping`).
    #[serde(default)]
    pub protocol: u64,
    /// Error description when `ok` is `false`. Structured configuration
    /// errors arrive with a `configuration:` prefix (the rendered
    /// `CoreError::Config`), distinguishable from parse or solve errors.
    #[serde(default)]
    pub error: String,
    /// Machine-readable error tag when `ok` is `false`: `"timeout"`,
    /// `"budget"`, `"overloaded"`, `"cache"`, `"config"`, `"unsat"`,
    /// ... (see `CoreError::kind`). Empty for legacy/parse errors.
    #[serde(default)]
    pub error_kind: String,
    /// On an `"overloaded"` error: suggested client backoff before
    /// retrying, in milliseconds.
    #[serde(default)]
    pub retry_after_ms: u64,

    // --- concretize ---
    /// DAG hash per requested root, request order.
    #[serde(default)]
    pub hashes: Vec<String>,
    /// Packages reused from the caches.
    #[serde(default)]
    pub reused: Vec<String>,
    /// Packages built from source.
    #[serde(default)]
    pub built: Vec<String>,
    /// Number of executed splices.
    #[serde(default)]
    pub spliced: u64,
    /// Did this solve reuse a memoized ground program?
    #[serde(default)]
    pub ground_cache_hit: bool,
    /// End-to-end solve wall time in milliseconds.
    #[serde(default)]
    pub solve_ms: f64,
    /// True when the solve proceeded without one or more failed
    /// reusable-spec sources (graceful degradation). The answer is
    /// bit-identical to a solve that never had those sources.
    #[serde(default)]
    pub degraded: bool,
    /// Backend labels of the sources a degraded solve skipped, in the
    /// order they were dropped.
    #[serde(default)]
    pub skipped_sources: Vec<String>,

    // --- unsat explanation (`concretize` with `explain:true` answering
    //     `error_kind:"unsat"`) ---
    /// The provenance-mapped unsat core, rendered as a structured
    /// `SPKL-E…` audit report in JSON (embedded string, same shape as
    /// `audit_report`). Empty when no explanation was produced.
    #[serde(default)]
    pub explanation: String,
    /// Was the core proven minimal (dropping any member restores
    /// satisfiability)? `false` means minimization stopped early — on
    /// the deadline or probe budget — and the core is still a valid
    /// but possibly reducible conflict set.
    #[serde(default)]
    pub explain_minimal: bool,
    /// Core members after minimization (this explanation's in
    /// `concretize`/`last`, cumulative since boot in `stats`).
    #[serde(default)]
    pub explain_core_size: u64,
    /// Deletion probes the minimizer ran (per-explanation in
    /// `concretize`/`last`, cumulative since boot in `stats`).
    #[serde(default)]
    pub explain_probes: u64,

    // --- search effort (this solve's in `concretize`/`last`,
    //     cumulative since boot in `stats`) ---
    /// SAT conflicts resolved.
    #[serde(default)]
    pub conflicts: u64,
    /// SAT decisions made.
    #[serde(default)]
    pub decisions: u64,
    /// SAT literal propagations performed.
    #[serde(default)]
    pub propagations: u64,
    /// SAT restarts performed.
    #[serde(default)]
    pub restarts: u64,

    // --- audit ---
    /// Error-severity diagnostics found.
    #[serde(default)]
    pub audit_errors: u64,
    /// Warning-severity diagnostics found.
    #[serde(default)]
    pub audit_warnings: u64,
    /// The full audit report, rendered as JSON (embedded string).
    #[serde(default)]
    pub audit_report: String,

    // --- stats / invalidate ---
    /// Requests handled since boot (all operations).
    #[serde(default)]
    pub requests: u64,
    /// Successful concretizations since boot.
    #[serde(default)]
    pub concretizations: u64,
    /// Failed requests since boot (parse, config, solve, ...).
    #[serde(default)]
    pub failures: u64,
    /// Requests currently being handled (gauge; includes this one).
    #[serde(default)]
    pub in_flight: u64,
    /// Cumulative ground-cache hits.
    #[serde(default)]
    pub ground_hits: u64,
    /// Cumulative ground-cache misses.
    #[serde(default)]
    pub ground_misses: u64,
    /// `ground_hits / (ground_hits + ground_misses)`, 0.0 when idle.
    #[serde(default)]
    pub hit_rate: f64,
    /// Prepared programs currently resident in the ground cache.
    #[serde(default)]
    pub cache_entries: u64,
    /// Current repository revision stamp.
    #[serde(default)]
    pub repo_revision: u64,
    /// Ground-cache entries dropped (cumulative in `stats`; this call's
    /// count in `invalidate` / `update`).
    #[serde(default)]
    pub invalidated: u64,
    /// Ground-cache entries retained across this `update` (their
    /// segments did not move, so they keep hitting).
    #[serde(default)]
    pub retained: u64,
    /// Segment fingerprints this `update` moved (the mutated package
    /// plus any packages whose provider ranks shifted).
    #[serde(default)]
    pub segments_changed: u64,
    /// Delta updates applied to the ground cache since boot (`stats`).
    #[serde(default)]
    pub delta_updates: u64,
    /// Cumulative entries dropped by delta updates (`stats`).
    #[serde(default)]
    pub segments_invalidated: u64,
    /// Cumulative entries retained across delta updates (`stats`).
    #[serde(default)]
    pub segments_retained: u64,
    /// Re-grounds that salvaged a dropped entry's CNF translation
    /// because the ground program came back bit-identical (`stats`).
    #[serde(default)]
    pub salvaged_translations: u64,
    /// Total concretization wall time since boot, milliseconds.
    #[serde(default)]
    pub total_solve_ms: f64,
    /// Slowest single concretization since boot, milliseconds.
    #[serde(default)]
    pub max_solve_ms: f64,
    /// Seconds since the server booted.
    #[serde(default)]
    pub uptime_s: f64,

    // --- fault tolerance (stats; counters since boot) ---
    /// Requests shed by overload protection.
    #[serde(default)]
    pub shed: u64,
    /// Concretize requests that hit their wall-clock deadline.
    #[serde(default)]
    pub timeouts: u64,
    /// Concretize requests that exhausted the solver's conflict budget.
    #[serde(default)]
    pub budget_exhausted: u64,
    /// Solves that completed degraded (one or more sources skipped).
    #[serde(default)]
    pub degraded_solves: u64,
    /// Worker threads that panicked (captured at drain; 0 is healthy).
    #[serde(default)]
    pub worker_panics: u64,
    /// Cache-source retries performed (cumulative over all sources).
    #[serde(default)]
    pub cache_retries: u64,
    /// Transient cache-source errors observed.
    #[serde(default)]
    pub cache_transient_errors: u64,
    /// Permanent cache-source errors observed.
    #[serde(default)]
    pub cache_permanent_errors: u64,
    /// Corrupt cache entries detected and refused.
    #[serde(default)]
    pub cache_corrupt_entries: u64,
    /// Circuit-breaker opens across all chained sources.
    #[serde(default)]
    pub cache_breaker_opens: u64,
    /// Faults injected by chaos wrappers (non-zero only under test).
    #[serde(default)]
    pub cache_injected_faults: u64,
    /// Unsat explanations produced since boot (`stats`).
    #[serde(default)]
    pub explains: u64,
    /// Explanations whose minimization stopped early (`stats`).
    #[serde(default)]
    pub explains_partial: u64,
}

impl Response {
    /// A success response answering `req`.
    pub fn ok_for(req: &Request) -> Response {
        Response {
            ok: true,
            id: req.id,
            op: req.op.clone(),
            ..Response::default()
        }
    }

    /// A failure response answering `req`.
    pub fn err_for(req: &Request, error: impl Into<String>) -> Response {
        Response {
            ok: false,
            id: req.id,
            op: req.op.clone(),
            error: error.into(),
            ..Response::default()
        }
    }

    /// Serialize as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("response serializes")
    }

    /// Parse one protocol line.
    pub fn from_line(line: &str) -> Result<Response, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut req = Request::concretize("hypre ^mpiabi").with_id(7);
        req.forbid.push("mpich".to_string());
        let back = Request::from_line(&req.to_line()).unwrap();
        assert_eq!(back.op, "concretize");
        assert_eq!(back.id, 7);
        assert_eq!(back.spec, "hypre ^mpiabi");
        assert_eq!(back.forbid, vec!["mpich".to_string()]);
    }

    #[test]
    fn response_roundtrip_and_defaults() {
        let mut resp = Response::ok_for(&Request::op("stats").with_id(3));
        resp.ground_hits = 60;
        resp.ground_misses = 4;
        resp.hit_rate = 0.9375;
        let back = Response::from_line(&resp.to_line()).unwrap();
        assert!(back.ok);
        assert_eq!(back.id, 3);
        assert_eq!(back.ground_hits, 60);
        assert!(back.hashes.is_empty(), "unset fields default");

        // A minimal line parses with every field defaulted.
        let minimal = Response::from_line("{\"ok\":true}").unwrap();
        assert!(minimal.ok);
        assert_eq!(minimal.error, "");
    }
}
