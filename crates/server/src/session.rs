//! Per-connection state: the session's default configuration preset and
//! the last concretize response (re-fetchable via the `last` op without
//! re-solving — handy for clients that fire a solve, drop the result,
//! and come back for details).

use crate::protocol::Response;
use spackle_core::{ConcretizerConfig, Encoding};

/// Resolve a configuration preset name.
///
/// `"splice"` → [`ConcretizerConfig::splice_spack`],
/// `"no-splice"` → [`ConcretizerConfig::splice_spack_disabled`],
/// `"old"` → [`ConcretizerConfig::old_spack`],
/// `"old+splice"` → the deliberately inconsistent direct-encoding +
/// splicing combination (the solve surfaces `CoreError::Config`; kept so
/// clients and tests can exercise the structured-error path end-to-end).
pub fn config_preset(name: &str) -> Result<ConcretizerConfig, String> {
    match name {
        "splice" => Ok(ConcretizerConfig::splice_spack()),
        "no-splice" => Ok(ConcretizerConfig::splice_spack_disabled()),
        "old" => Ok(ConcretizerConfig::old_spack()),
        "old+splice" => Ok(ConcretizerConfig {
            encoding: Encoding::Direct,
            splicing: true,
            ..ConcretizerConfig::default()
        }),
        other => Err(format!(
            "unknown config preset {other:?} (expected \"splice\", \"no-splice\", \
             \"old\", or \"old+splice\")"
        )),
    }
}

/// State one connection carries between requests.
#[derive(Debug)]
pub struct Session {
    /// Preset used when a concretize request leaves `config` empty.
    default_config: String,
    /// The most recent successful concretize response on this
    /// connection.
    last: Option<Response>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Fresh session: default preset is `"splice"` (full splice spack).
    pub fn new() -> Session {
        Session {
            default_config: "splice".to_string(),
            last: None,
        }
    }

    /// The effective preset name for a request-supplied `config` field
    /// (empty string means "session default").
    pub fn effective_config<'a>(&'a self, requested: &'a str) -> &'a str {
        if requested.is_empty() {
            &self.default_config
        } else {
            requested
        }
    }

    /// Update the session default. The name is validated here so a typo
    /// fails at `set-config` time, not on a later concretize.
    pub fn set_default_config(&mut self, name: &str) -> Result<(), String> {
        config_preset(name)?;
        self.default_config = name.to_string();
        Ok(())
    }

    /// The current default preset name.
    pub fn default_config(&self) -> &str {
        &self.default_config
    }

    /// Remember a successful concretize response.
    pub fn remember(&mut self, response: &Response) {
        self.last = Some(response.clone());
    }

    /// The last successful concretize response, if any.
    pub fn last(&self) -> Option<&Response> {
        self.last.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve() {
        assert!(config_preset("splice").unwrap().splicing);
        assert!(!config_preset("no-splice").unwrap().splicing);
        assert_eq!(config_preset("old").unwrap().encoding, Encoding::Direct);
        assert!(config_preset("old+splice").unwrap().validate().is_err());
        assert!(config_preset("bogus").is_err());
    }

    #[test]
    fn session_default_and_validation() {
        let mut s = Session::new();
        assert_eq!(s.effective_config(""), "splice");
        assert_eq!(s.effective_config("old"), "old");
        s.set_default_config("no-splice").unwrap();
        assert_eq!(s.effective_config(""), "no-splice");
        assert!(s.set_default_config("bogus").is_err());
        assert_eq!(s.default_config(), "no-splice", "bad name left default");
    }
}
