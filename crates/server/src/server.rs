//! The service core: shared state, the TCP accept loop, and the
//! per-connection worker threads.
//!
//! [`ServerState`] is the daemon's resident memory — one repository
//! snapshot behind a read-mostly lock, the chained reusable-spec
//! sources, one warm [`GroundCache`], and the telemetry counters. Every
//! request builds a throwaway [`Concretizer`] from `Arc` handles to that
//! state, so solves on different connections run fully in parallel and
//! share every index.
//!
//! Invalidation is *graceful by construction*: `invalidate` swaps in a
//! re-stamped repository snapshot and drops stale ground-cache entries,
//! but solves already in flight keep their own `Arc` snapshot of the old
//! repository and their own handle to the prepared program, so they
//! finish — bit-identical to what they would have produced — while new
//! requests see the new revision. The ground cache's revision floor
//! rejects stale stragglers trying to repopulate dropped entries.

use crate::handle::handle;
use crate::protocol::{Request, Response, MAX_LINE_BYTES};
use crate::session::Session;
use crate::telemetry::Telemetry;
use parking_lot::RwLock;
use spackle_buildcache::CacheSource;
use spackle_core::{Concretizer, ConcretizerConfig, GroundCache};
use spackle_repo::Repository;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Everything the daemon keeps resident across requests.
pub struct ServerState {
    repo: RwLock<Arc<Repository>>,
    caches: Vec<Arc<dyn CacheSource>>,
    ground_cache: Arc<GroundCache>,
    telemetry: Telemetry,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Resident state over a repository and reusable-spec sources, with
    /// a fresh warm-ready ground cache.
    pub fn new(repo: Repository, caches: Vec<Arc<dyn CacheSource>>) -> ServerState {
        ServerState {
            repo: RwLock::new(Arc::new(repo)),
            caches,
            ground_cache: GroundCache::shared(),
            telemetry: Telemetry::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The current repository snapshot (cheap: one `Arc` clone under a
    /// read lock).
    pub fn repo_snapshot(&self) -> Arc<Repository> {
        Arc::clone(&self.repo.read())
    }

    /// A request-scoped concretizer over the *current* snapshot: holds
    /// its own `Arc`s, so a concurrent `invalidate` never disturbs it.
    pub fn concretizer(&self, config: ConcretizerConfig) -> Concretizer {
        let mut conc = Concretizer::shared(self.repo_snapshot())
            .with_config(config)
            .with_ground_cache(Arc::clone(&self.ground_cache));
        for cache in &self.caches {
            conc = conc.with_reusable(cache);
        }
        conc
    }

    /// Reload: re-stamp the repository snapshot with a fresh revision
    /// and drop every ground-cache entry keyed below it. Returns
    /// `(new_revision, entries_dropped)`. In-flight solves keep their
    /// old snapshot and finish untouched; the cache's revision floor
    /// keeps them from re-inserting stale programs afterwards.
    pub fn invalidate(&self) -> (u64, usize) {
        let new_revision = {
            let mut slot = self.repo.write();
            let mut fresh = (**slot).clone();
            fresh.bump_revision();
            let rev = fresh.revision();
            *slot = Arc::new(fresh);
            rev
        };
        let dropped = self.ground_cache.invalidate_below(new_revision);
        (new_revision, dropped)
    }

    /// The shared warm ground cache.
    pub fn ground_cache(&self) -> &Arc<GroundCache> {
        &self.ground_cache
    }

    /// The chained reusable-spec sources, highest priority first.
    pub fn caches(&self) -> &[Arc<dyn CacheSource>] {
        &self.caches
    }

    /// The service counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Ask the accept loop to stop (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server: the bound address plus the accept-loop thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for in-process inspection, e.g. tests).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Block until the server has shut down and every connection thread
    /// has drained.
    pub fn join(self) {
        self.accept.join().expect("accept loop panicked");
    }

    /// Request shutdown from outside a connection (tests, signal
    /// handlers) and wake the accept loop.
    pub fn initiate_shutdown(&self) {
        self.state.request_shutdown();
        let _ = TcpStream::connect(self.addr);
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
/// accepting connections, one worker thread per connection.
pub fn serve(state: Arc<ServerState>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || accept_loop(listener, local, accept_state));
    Ok(ServerHandle {
        addr: local,
        state,
        accept,
    })
}

fn accept_loop(listener: TcpListener, addr: SocketAddr, state: Arc<ServerState>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if state.shutdown_requested() {
            break;
        }
        match stream {
            Ok(stream) => {
                let state = Arc::clone(&state);
                workers.push(std::thread::spawn(move || {
                    serve_connection(stream, addr, &state);
                }));
            }
            // Transient accept errors (EMFILE, aborted handshakes) must
            // not kill the daemon.
            Err(_) => continue,
        }
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Serve one connection until EOF: read a line, handle it, answer with a
/// line. Parse failures answer with `ok:false` and keep the connection.
fn serve_connection(stream: TcpStream, addr: SocketAddr, state: &ServerState) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut session = Session::new();
    let mut line = String::new();

    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // client hung up
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }

        let _guard = state.telemetry().begin_request();
        let response = if line.len() > MAX_LINE_BYTES {
            state.telemetry().record_failure();
            Response::err_for(
                &Request::default(),
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            )
        } else {
            match Request::from_line(trimmed) {
                Ok(request) => handle(state, &mut session, &request),
                Err(e) => {
                    state.telemetry().record_failure();
                    Response::err_for(&Request::default(), format!("bad request: {e}"))
                }
            }
        };

        let is_shutdown = response.ok && response.op == "shutdown";
        if writer
            .write_all(response.to_line().as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if is_shutdown {
            // Raise the flag, then wake the accept loop so it observes
            // it; the wake connection itself is discarded by the
            // shutdown check.
            state.request_shutdown();
            let _ = TcpStream::connect(addr);
            break;
        }
    }
}
