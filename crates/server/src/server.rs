//! The service core: shared state, the TCP accept loop, and the
//! per-connection worker threads.
//!
//! [`ServerState`] is the daemon's resident memory — one repository
//! snapshot behind a read-mostly lock, the chained reusable-spec
//! sources, one warm [`GroundCache`], and the telemetry counters. Every
//! request builds a throwaway [`Concretizer`] from `Arc` handles to that
//! state, so solves on different connections run fully in parallel and
//! share every index.
//!
//! Invalidation is *graceful by construction*: `invalidate` swaps in a
//! re-stamped repository snapshot and drops stale ground-cache entries,
//! but solves already in flight keep their own `Arc` snapshot of the old
//! repository and their own handle to the prepared program, so they
//! finish — bit-identical to what they would have produced — while new
//! requests see the new revision. The ground cache's revision floor
//! rejects stale stragglers trying to repopulate dropped entries.
//!
//! Overload and shutdown are handled here too, as [`OpsConfig`] knobs:
//!
//! * **Shedding** — when more than `max_in_flight` requests are being
//!   handled, new *concretize* requests (the expensive op) are answered
//!   immediately with a structured `overloaded` error carrying
//!   `retry_after_ms`, instead of queueing behind saturated workers.
//!   Cheap ops (ping, stats, shutdown) always get through, so the
//!   daemon stays observable and stoppable under load. Shed requests
//!   are counted separately from failures: the client did nothing
//!   wrong.
//! * **Drain** — shutdown closes the accept loop, then polls worker
//!   threads for up to `drain_timeout`. Connection reads use a short
//!   poll timeout so idle workers notice the flag and exit; a worker
//!   stuck past the deadline is abandoned (the process is about to exit
//!   anyway) and reported in the [`DrainReport`] rather than hanging
//!   `join` forever. Panicked workers are captured and counted, never
//!   silently dropped and never propagated as a panic of the accept
//!   loop.

use crate::handle::handle;
use crate::protocol::{Request, Response, MAX_LINE_BYTES};
use crate::session::Session;
use crate::telemetry::Telemetry;
use parking_lot::RwLock;
use spackle_buildcache::CacheSource;
use spackle_core::{repo_delta, Concretizer, ConcretizerConfig, DeltaReport, GroundCache};
use spackle_repo::Repository;
use spackle_spec::{Sym, Version};
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a blocked connection read wakes up to check the shutdown
/// flag. Also bounds how stale a partial line can sit in the buffer
/// before the worker notices a drain.
const READ_POLL: Duration = Duration::from_millis(250);

/// How often the drain loop re-polls unfinished workers.
const DRAIN_POLL: Duration = Duration::from_millis(25);

/// Operational limits for a running server. All default to "off"
/// except the drain timeout, which must be finite for `join` to be
/// reliable.
#[derive(Clone, Copy, Debug)]
pub struct OpsConfig {
    /// Maximum requests being handled at once before new *concretize*
    /// requests are shed with a structured `overloaded` response.
    /// `0` disables shedding.
    pub max_in_flight: usize,
    /// Wall-clock deadline applied to every concretize request that
    /// does not carry its own `timeout_ms`. `None` means no default
    /// deadline.
    pub default_timeout: Option<Duration>,
    /// How long shutdown waits for in-flight workers before abandoning
    /// them.
    pub drain_timeout: Duration,
}

impl Default for OpsConfig {
    fn default() -> OpsConfig {
        OpsConfig {
            max_in_flight: 0,
            default_timeout: None,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// What one applied repository delta did (the `update` request).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The repository revision after republication.
    pub revision: u64,
    /// Segment fingerprints the delta moved (the mutated package plus
    /// any packages whose provider ranks shifted).
    pub segments_changed: usize,
    /// What the ground cache dropped vs kept.
    pub report: DeltaReport,
}

/// What the drain phase of shutdown observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Worker threads that finished and were joined (panicked workers
    /// included — they are also counted in `worker_panics`).
    pub workers_joined: usize,
    /// Worker threads still running when the drain deadline expired;
    /// their handles were dropped (the threads are detached).
    pub workers_abandoned: usize,
    /// Joined workers whose thread had panicked.
    pub worker_panics: usize,
}

/// A structured server lifecycle error (no panics escape `join`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// The accept loop itself panicked; the payload is the rendered
    /// panic message.
    AcceptLoopPanicked(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::AcceptLoopPanicked(msg) => {
                write!(f, "accept loop panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// Render a `JoinHandle::join` panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Everything the daemon keeps resident across requests.
pub struct ServerState {
    repo: RwLock<Arc<Repository>>,
    caches: Vec<Arc<dyn CacheSource>>,
    ground_cache: Arc<GroundCache>,
    telemetry: Telemetry,
    shutdown: AtomicBool,
    ops: OpsConfig,
}

impl ServerState {
    /// Resident state over a repository and reusable-spec sources, with
    /// a fresh warm-ready ground cache.
    pub fn new(repo: Repository, caches: Vec<Arc<dyn CacheSource>>) -> ServerState {
        ServerState {
            repo: RwLock::new(Arc::new(repo)),
            caches,
            ground_cache: GroundCache::shared(),
            telemetry: Telemetry::new(),
            shutdown: AtomicBool::new(false),
            ops: OpsConfig::default(),
        }
    }

    /// Replace the operational limits (builder style; call before
    /// wrapping in an `Arc`).
    pub fn with_ops(mut self, ops: OpsConfig) -> ServerState {
        self.ops = ops;
        self
    }

    /// The operational limits this server runs under.
    pub fn ops(&self) -> &OpsConfig {
        &self.ops
    }

    /// The current repository snapshot (cheap: one `Arc` clone under a
    /// read lock).
    pub fn repo_snapshot(&self) -> Arc<Repository> {
        Arc::clone(&self.repo.read())
    }

    /// A request-scoped concretizer over the *current* snapshot: holds
    /// its own `Arc`s, so a concurrent `invalidate` never disturbs it.
    pub fn concretizer(&self, config: ConcretizerConfig) -> Concretizer {
        let mut conc = Concretizer::shared(self.repo_snapshot())
            .with_config(config)
            .with_ground_cache(Arc::clone(&self.ground_cache));
        for cache in &self.caches {
            conc = conc.with_reusable(cache);
        }
        conc
    }

    /// Reload: re-stamp the repository snapshot with a fresh revision
    /// and drop every ground-cache entry keyed below it. Returns
    /// `(new_revision, entries_dropped)`. In-flight solves keep their
    /// old snapshot and finish untouched; the cache's revision floor
    /// keeps them from re-inserting stale programs afterwards.
    pub fn invalidate(&self) -> (u64, usize) {
        let new_revision = {
            let mut slot = self.repo.write();
            let mut fresh = (**slot).clone();
            fresh.bump_revision();
            let rev = fresh.revision();
            *slot = Arc::new(fresh);
            rev
        };
        let dropped = self.ground_cache.invalidate_below(new_revision);
        (new_revision, dropped)
    }

    /// Delta update: declare `version` on existing package `package`,
    /// republish the repository, and partially invalidate the warm
    /// ground cache by segment fingerprint. The new version is appended
    /// (least preferred), so retained solutions stay optimal; entries
    /// whose encode closure avoids `package` keep their content-composed
    /// keys and keep hitting. In-flight solves hold their own snapshot
    /// `Arc`s and finish untouched; the cache's retirement table rejects
    /// any of their stale late inserts.
    pub fn update(&self, package: &str, version: &str) -> Result<UpdateOutcome, String> {
        let name = Sym::intern(package);
        let ver = Version::parse(version).map_err(|e| format!("bad version {version:?}: {e}"))?;
        let (revision, delta) = {
            let mut slot = self.repo.write();
            let Some(def) = slot.get(name) else {
                return Err(format!("no such package: {package}"));
            };
            if def.versions.contains(&ver) {
                return Err(format!("{package} already declares version {version}"));
            }
            let mut def = def.clone();
            def.versions.push(ver); // appended = least preferred
            let mut fresh = (**slot).clone();
            fresh.upsert(def);
            let delta = repo_delta(&slot, &fresh);
            let revision = fresh.revision();
            *slot = Arc::new(fresh);
            (revision, delta)
        };
        let report = self.ground_cache.apply_delta(&delta);
        self.telemetry.record_update();
        Ok(UpdateOutcome {
            revision,
            segments_changed: delta.len(),
            report,
        })
    }

    /// The shared warm ground cache.
    pub fn ground_cache(&self) -> &Arc<GroundCache> {
        &self.ground_cache
    }

    /// The chained reusable-spec sources, highest priority first.
    pub fn caches(&self) -> &[Arc<dyn CacheSource>] {
        &self.caches
    }

    /// The service counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Ask the accept loop to stop (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server: the bound address plus the accept-loop thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: JoinHandle<DrainReport>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for in-process inspection, e.g. tests).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Block until the server has shut down and its workers have
    /// drained (bounded by [`OpsConfig::drain_timeout`]). An accept-loop
    /// panic comes back as a structured [`ServerError`], never as a
    /// panic of the caller.
    pub fn join(self) -> Result<DrainReport, ServerError> {
        self.accept
            .join()
            .map_err(|payload| ServerError::AcceptLoopPanicked(panic_message(payload)))
    }

    /// Request shutdown from outside a connection (tests, signal
    /// handlers) and wake the accept loop.
    pub fn initiate_shutdown(&self) {
        self.state.request_shutdown();
        let _ = TcpStream::connect(self.addr);
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
/// accepting connections, one worker thread per connection.
pub fn serve(state: Arc<ServerState>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || accept_loop(listener, local, accept_state));
    Ok(ServerHandle {
        addr: local,
        state,
        accept,
    })
}

fn accept_loop(listener: TcpListener, addr: SocketAddr, state: Arc<ServerState>) -> DrainReport {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut report = DrainReport::default();
    for stream in listener.incoming() {
        if state.shutdown_requested() {
            break;
        }
        // Reap finished workers as we go so a long-lived daemon does
        // not accumulate handles (and so mid-life panics surface in
        // telemetry, not only at drain time).
        let (done, live): (Vec<_>, Vec<_>) =
            workers.into_iter().partition(JoinHandle::is_finished);
        workers = live;
        for w in done {
            report.workers_joined += 1;
            if w.join().is_err() {
                report.worker_panics += 1;
                state.telemetry().record_worker_panics(1);
            }
        }
        match stream {
            Ok(stream) => {
                let state = Arc::clone(&state);
                workers.push(std::thread::spawn(move || {
                    serve_connection(stream, addr, &state);
                }));
            }
            // Transient accept errors (EMFILE, aborted handshakes) must
            // not kill the daemon.
            Err(_) => continue,
        }
    }
    drain_workers(workers, &state, report)
}

/// Join workers with a deadline: poll `is_finished`, join what is done
/// (capturing panics), abandon the rest once `drain_timeout` expires.
fn drain_workers(
    mut workers: Vec<JoinHandle<()>>,
    state: &ServerState,
    mut report: DrainReport,
) -> DrainReport {
    let deadline = Instant::now() + state.ops().drain_timeout;
    loop {
        let (done, live): (Vec<_>, Vec<_>) =
            workers.into_iter().partition(JoinHandle::is_finished);
        for w in done {
            report.workers_joined += 1;
            if w.join().is_err() {
                report.worker_panics += 1;
                state.telemetry().record_worker_panics(1);
            }
        }
        if live.is_empty() {
            return report;
        }
        if Instant::now() >= deadline {
            report.workers_abandoned += live.len();
            return report;
        }
        workers = live;
        std::thread::sleep(DRAIN_POLL);
    }
}

/// Should this request be shed? Only *concretize* (the expensive op)
/// sheds, and only when the in-flight gauge — which already counts this
/// request, hence the strict `>` — is past the configured limit. Ping,
/// stats and shutdown always get through, keeping an overloaded daemon
/// observable and stoppable.
fn should_shed(state: &ServerState, request: &Request) -> bool {
    let limit = state.ops().max_in_flight;
    limit > 0 && request.op == "concretize" && state.telemetry().in_flight() > limit as u64
}

/// Serve one connection until EOF: read a line, handle it, answer with a
/// line. Parse failures answer with `ok:false` and keep the connection.
///
/// Reads poll on a short timeout so an idle worker notices a drain and
/// exits instead of blocking shutdown forever. A timeout mid-line keeps
/// the partial bytes (`read_line` appends, and the buffer is cleared
/// only after a complete line is processed), so slow writers never get
/// their requests truncated or spliced together.
fn serve_connection(stream: TcpStream, addr: SocketAddr, state: &ServerState) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let _ = read_half.set_read_timeout(Some(READ_POLL));
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut session = Session::new();
    let mut line = String::new();

    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // client hung up
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Poll tick: partial bytes stay buffered in `line`.
                if state.shutdown_requested() {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }

        let _guard = state.telemetry().begin_request();
        let response = if line.len() > MAX_LINE_BYTES {
            state.telemetry().record_failure();
            Response::err_for(
                &Request::default(),
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            )
        } else {
            match Request::from_line(trimmed) {
                Ok(request) if should_shed(state, &request) => {
                    state.telemetry().record_shed();
                    let mut r = Response::err_for(
                        &request,
                        format!(
                            "server overloaded ({} requests in flight); retry shortly",
                            state.telemetry().in_flight()
                        ),
                    );
                    r.error_kind = "overloaded".to_string();
                    r.retry_after_ms = 100;
                    r
                }
                Ok(request) => handle(state, &mut session, &request),
                Err(e) => {
                    state.telemetry().record_failure();
                    Response::err_for(&Request::default(), format!("bad request: {e}"))
                }
            }
        };
        line.clear();

        let is_shutdown = response.ok && response.op == "shutdown";
        if writer
            .write_all(response.to_line().as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if is_shutdown {
            // Raise the flag, then wake the accept loop so it observes
            // it; the wake connection itself is discarded by the
            // shutdown check.
            state.request_shutdown();
            let _ = TcpStream::connect(addr);
            break;
        }
    }
}
