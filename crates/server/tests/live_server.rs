//! End-to-end test against a live `spackled`: boot the server on an
//! ephemeral port, hammer it from concurrent client connections, check
//! every response is bit-identical to a direct cold solve, check the
//! telemetry adds up exactly, invalidate while solves are in flight,
//! and shut down cleanly.

use spackle_buildcache::{BuildCache, CacheSource, FaultConfig, FaultInjector};
use spackle_core::Concretizer;
use spackle_repo::{PackageBuilder, Repository};
use spackle_server::server::{OpsConfig, ServerState};
use spackle_server::{serve, Client, Request, RetryConfig};
use spackle_spec::parse_spec;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENT_THREADS: usize = 4;
const WARM_ROUNDS: usize = 3;
const STORM_ROUNDS: usize = 2;

const GOALS: [&str; 6] = ["app", "cmake", "curl", "openssl", "zlib@1.2", "bzip2"];

fn test_repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2")
            .build()
            .unwrap(),
        PackageBuilder::new("bzip2").version("1.0.8").build().unwrap(),
        PackageBuilder::new("openssl")
            .version("3.0")
            .depends_on("zlib")
            .build()
            .unwrap(),
        PackageBuilder::new("curl")
            .version("8.5")
            .depends_on("openssl")
            .depends_on("zlib")
            .build()
            .unwrap(),
        PackageBuilder::new("cmake")
            .version("3.27")
            .depends_on("curl")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("curl")
            .depends_on("bzip2")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

fn seeded_cache(repo: &Repository) -> Arc<dyn CacheSource> {
    let mut bc = BuildCache::new();
    for g in ["zlib@1.3", "openssl"] {
        let sol = Concretizer::new(repo)
            .concretize(&parse_spec(g).unwrap())
            .unwrap();
        bc.add_spec(sol.spec());
    }
    Arc::new(bc)
}

#[test]
fn concurrent_clients_share_one_warm_cache() {
    let repo = test_repo();
    let cache = seeded_cache(&repo);

    // Direct cold solves: the ground truth every server answer must
    // reproduce bit-for-bit. The server uses the "splice" preset by
    // default, so the baseline does too.
    let baseline: Vec<Vec<String>> = GOALS
        .iter()
        .map(|g| {
            let sol = Concretizer::new(&repo)
                .with_reusable(&cache)
                .concretize(&parse_spec(g).unwrap())
                .unwrap();
            sol.specs
                .iter()
                .map(|s| s.dag_hash().to_string())
                .collect()
        })
        .collect();

    let state = Arc::new(ServerState::new(repo, vec![cache]));
    let server = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let mut control = Client::connect(addr).expect("connect");
    let ping = control.call(Request::op("ping")).unwrap();
    assert!(ping.ok);
    assert_eq!(ping.protocol, spackle_server::PROTOCOL_VERSION);

    // Warm the shared cache: each goal misses exactly once.
    for (i, g) in GOALS.iter().enumerate() {
        let resp = control.concretize(g).unwrap();
        assert!(resp.ok, "{}", resp.error);
        assert!(!resp.ground_cache_hit, "goal {g} should miss cold");
        assert_eq!(resp.hashes, baseline[i], "cold solve for {g} diverged");
    }

    // Fan out: 4 client connections × 3 rounds × 6 goals = 72 warm
    // concretize requests, all served from the one shared cache.
    std::thread::scope(|s| {
        for t in 0..CLIENT_THREADS {
            let baseline = &baseline;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..WARM_ROUNDS {
                    for (i, g) in GOALS.iter().enumerate() {
                        let resp = client.concretize(g).unwrap();
                        assert!(resp.ok, "thread {t}: {}", resp.error);
                        assert!(
                            resp.ground_cache_hit,
                            "thread {t} round {round}: {g} should hit warm"
                        );
                        assert_eq!(
                            resp.hashes, baseline[i],
                            "thread {t} round {round}: {g} diverged from cold solve"
                        );
                    }
                }
            });
        }
    });

    let warm_hits = (CLIENT_THREADS * WARM_ROUNDS * GOALS.len()) as u64;
    let stats1 = control.stats().unwrap();
    assert!(stats1.ok);
    assert_eq!(stats1.concretizations, GOALS.len() as u64 + warm_hits);
    assert_eq!(stats1.ground_misses, GOALS.len() as u64);
    assert_eq!(stats1.ground_hits, warm_hits);
    assert!(
        stats1.hit_rate >= 0.9,
        "warm hit rate {:.3} below 0.9",
        stats1.hit_rate
    );
    assert_eq!(stats1.failures, 0);
    assert_eq!(stats1.cache_entries, GOALS.len() as u64);
    assert!(stats1.in_flight >= 1, "the stats request itself is in flight");
    assert!(stats1.max_solve_ms <= stats1.total_solve_ms);

    // Invalidate while solves are in flight: solver threads keep going
    // through reloads; nothing may fail and nothing may diverge.
    std::thread::scope(|s| {
        for t in 0..CLIENT_THREADS {
            let baseline = &baseline;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..STORM_ROUNDS {
                    for (i, g) in GOALS.iter().enumerate() {
                        let resp = client.concretize(g).unwrap();
                        assert!(resp.ok, "thread {t}: {}", resp.error);
                        assert_eq!(
                            resp.hashes, baseline[i],
                            "thread {t} round {round}: {g} diverged across invalidation"
                        );
                    }
                }
            });
        }
        let control = &mut control;
        s.spawn(move || {
            for _ in 0..3 {
                std::thread::sleep(std::time::Duration::from_millis(2));
                let inv = control.invalidate().unwrap();
                assert!(inv.ok, "{}", inv.error);
            }
        });
    });

    let storm_solves = (CLIENT_THREADS * STORM_ROUNDS * GOALS.len()) as u64;
    let stats2 = control.stats().unwrap();
    assert_eq!(stats2.concretizations, stats1.concretizations + storm_solves);
    assert_eq!(
        stats2.ground_hits + stats2.ground_misses,
        stats2.concretizations,
        "every solve is exactly one counted lookup"
    );
    assert_eq!(stats2.failures, 0, "no solve failed during invalidation");
    assert!(stats2.invalidated >= 1, "reloads dropped warm entries");
    assert!(stats2.repo_revision > stats1.repo_revision);
    // Everything between the two stats calls is accounted for: the
    // storm solves, 3 invalidates, and the stats request itself.
    assert_eq!(stats2.requests, stats1.requests + storm_solves + 3 + 1);

    // Clean shutdown: the accept loop stops, every worker drains, and
    // join() returns.
    let down = control.shutdown().unwrap();
    assert!(down.ok);
    drop(control);
    let report = server.join().expect("clean shutdown");
    assert_eq!(report.worker_panics, 0);
    assert_eq!(report.workers_abandoned, 0, "all workers drained: {report:?}");
    assert_eq!(state.telemetry().snapshot().in_flight, 0, "gauge drained");
}

/// Deadlines and overload shedding against a live server with a
/// latency-injected cache backend: expired deadlines come back as
/// structured `timeout` errors, requests past the in-flight cap come
/// back as structured `overloaded` errors, the telemetry counts both
/// exactly, no connection is ever dropped, and a retrying client rides
/// out the saturation.
#[test]
fn deadlines_and_overload_shed_with_exact_telemetry() {
    let repo = test_repo();
    // Every cache lookup sleeps 40 ms: solves stay correct but slow,
    // giving the deadline something to expire against and the probes a
    // wide window in which the held solves are still in flight.
    let slow: Arc<dyn CacheSource> = Arc::new(
        FaultInjector::new(seeded_cache(&repo), "local")
            .with_config(FaultConfig::slow(Duration::from_millis(40))),
    );
    let ops = OpsConfig {
        max_in_flight: 2,
        default_timeout: None,
        drain_timeout: Duration::from_secs(5),
    };
    let state = Arc::new(ServerState::new(repo, vec![slow]).with_ops(ops));
    let server = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    /// Block until `n` requests are being handled (read in-process, so
    /// the wait itself does not occupy a server slot).
    fn wait_in_flight(state: &ServerState, n: u64) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while state.telemetry().in_flight() < n {
            assert!(Instant::now() < deadline, "server never reached {n} in flight");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // --- Phase 1: deadline expiry is a structured timeout. ---
    let mut control = Client::connect(addr).expect("connect");
    let mut timed = Request::concretize("app");
    timed.timeout_ms = 1; // expires during the first 40 ms cache sleep
    let r = control.call(timed).unwrap();
    assert!(!r.ok);
    assert_eq!(r.error_kind, "timeout", "got: {}", r.error);
    // The connection survives its own timeout.
    assert!(control.call(Request::op("ping")).unwrap().ok);

    // --- Phase 2: saturate both slots, then probe; every probe must
    // shed with a structured answer and the connection stays usable. ---
    let spawn_held = || {
        let mut c = Client::connect(addr).expect("connect");
        std::thread::spawn(move || c.concretize("app").unwrap())
    };
    let held = [spawn_held(), spawn_held()];
    wait_in_flight(&state, 2);

    let mut probe = Client::connect(addr).expect("connect");
    let mut shed_seen = 0u64;
    for _ in 0..3 {
        let r = probe.call(Request::concretize("cmake")).unwrap();
        assert!(!r.ok, "probe must shed while both slots are busy");
        assert_eq!(r.error_kind, "overloaded", "got: {}", r.error);
        assert!(r.retry_after_ms > 0, "shed must carry a retry hint");
        shed_seen += 1;
    }
    // Shedding is per-op: cheap requests pass even at the cap.
    assert!(probe.call(Request::op("ping")).unwrap().ok);

    for h in held {
        let resp = h.join().expect("held client");
        assert!(resp.ok, "held solve failed: {}", resp.error);
        assert!(!resp.degraded, "latency is not a fault; no degradation");
    }
    // The shed connection is still fully functional once load clears.
    let after = probe.call(Request::concretize("cmake")).unwrap();
    assert!(after.ok, "{}", after.error);

    let stats = control.stats().unwrap();
    assert_eq!(stats.timeouts, 1, "exactly the phase-1 deadline");
    assert_eq!(stats.shed, shed_seen, "exactly the phase-2 probes");
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.degraded_solves, 0);
    assert_eq!(
        stats.failures, 1,
        "the timeout is a failure; sheds are deliberately not"
    );

    // --- Phase 3: a retrying client rides out saturation. ---
    let held = [spawn_held(), spawn_held()];
    wait_in_flight(&state, 2);
    let retry = RetryConfig {
        max_attempts: 30,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(50),
        total_deadline: Some(Duration::from_secs(10)),
    };
    let mut patient = Client::connect_with(addr, retry).expect("connect");
    let r = patient.call_retrying(Request::concretize("curl")).unwrap();
    assert!(r.ok, "retrying client must eventually land: {}", r.error);
    for h in held {
        assert!(h.join().expect("held client").ok);
    }
    let stats2 = control.stats().unwrap();
    assert!(stats2.shed > stats.shed, "the retrying client was shed at least once");

    let down = control.shutdown().unwrap();
    assert!(down.ok);
    drop(control);
    drop(probe);
    drop(patient);
    let report = server.join().expect("clean shutdown");
    assert_eq!(report.worker_panics, 0);
    assert_eq!(report.workers_abandoned, 0, "{report:?}");
    assert_eq!(state.telemetry().snapshot().in_flight, 0);
}

/// Per-session defaults are really per-connection: a `set-config` on one
/// connection must not leak into another.
#[test]
fn session_config_is_per_connection() {
    let repo = test_repo();
    let state = Arc::new(ServerState::new(repo, Vec::new()));
    let server = serve(Arc::clone(&state), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();

    let set = a.call(Request::op("set-config").with_config("old+splice")).unwrap();
    assert!(set.ok, "set-config validates the preset name, not its consistency");
    let from_a = a.concretize("app").unwrap();
    assert!(!from_a.ok, "connection A inherits its inconsistent default");
    assert!(from_a.error.starts_with("configuration:"));

    let from_b = b.concretize("app").unwrap();
    assert!(from_b.ok, "connection B is untouched: {}", from_b.error);

    // `last` replays B's solution without re-solving.
    let last = b.call(Request::op("last")).unwrap();
    assert!(last.ok);
    assert_eq!(last.hashes, from_b.hashes);

    let down = b.shutdown().unwrap();
    assert!(down.ok);
    drop(a);
    drop(b);
    server.join().expect("clean shutdown");
}
