//! Model certificate checking: validate a candidate answer set against a
//! ground program directly, from the definitions.
//!
//! A production solver run goes through grounding, Clark completion, CDCL
//! search, stability CEGAR, and branch-and-bound optimization — any of
//! which could be subtly wrong. This module re-checks an emitted model
//! against the [`GroundProgram`] alone, using a deliberately simple
//! quadratic fixpoint written straight from the Gelfond–Lifschitz
//! definition (no indexing, no shared code with [`crate::stability`]), so
//! it can serve as an independent certificate checker:
//!
//! 1. **Classical satisfaction** — every rule, constraint, and choice
//!    cardinality bound holds in the candidate.
//! 2. **Reduct minimality** — the candidate equals the least model of its
//!    own Gelfond–Lifschitz reduct (no unfounded/self-supported atoms).
//! 3. **Cost tightness** — the recorded `(priority, cost)` vector equals
//!    the cost recomputed from the true atoms under Clingo set-of-tuples
//!    semantics (each distinct `(priority, weight, tuple)` contributes
//!    its weight once if *any* of its conditions holds).
//!
//! The checker cannot prove global *optimality* (that would require a
//! search of its own — `spackle-oracle` does that for small programs);
//! it proves the model is a stable model and that the claimed objective
//! value is honest.

use crate::ground::GroundProgram;
use crate::model::Model;
use crate::term::{AtomId, TermId};
use rustc_hash::{FxHashMap, FxHashSet};
use std::fmt;

/// Why a candidate model failed certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// A true atom is not in the grounder's possible-atom universe.
    ForeignAtom {
        /// Rendering of the offending atom.
        atom: String,
    },
    /// A certain (fact-derived) atom is false in the candidate.
    MissingCertain {
        /// Rendering of the missing atom.
        atom: String,
    },
    /// A rule's body holds but its head is false.
    UnsatisfiedRule {
        /// Index into [`GroundProgram::rules`].
        index: usize,
    },
    /// An integrity constraint's body holds.
    ViolatedConstraint {
        /// Index into [`GroundProgram::constraints`].
        index: usize,
    },
    /// A choice instance's body holds but the number of chosen elements
    /// is outside the cardinality bounds.
    ChoiceBounds {
        /// Index into [`GroundProgram::choices`].
        index: usize,
        /// How many elements are true in the candidate.
        chosen: usize,
    },
    /// The candidate is not the least model of its reduct: these atoms
    /// are true but underivable (unfounded).
    NotMinimal {
        /// Renderings of the unfounded atoms.
        atoms: Vec<String>,
    },
    /// The recorded cost vector disagrees with the cost recomputed from
    /// the true atoms.
    CostMismatch {
        /// Cost vector recorded on the model.
        claimed: Vec<(i64, i64)>,
        /// Cost vector recomputed from the ground program.
        actual: Vec<(i64, i64)>,
    },
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::ForeignAtom { atom } => {
                write!(f, "atom {atom} is true but outside the ground universe")
            }
            CertifyError::MissingCertain { atom } => {
                write!(f, "certain atom {atom} is false in the model")
            }
            CertifyError::UnsatisfiedRule { index } => {
                write!(f, "rule #{index} fires but its head is false")
            }
            CertifyError::ViolatedConstraint { index } => {
                write!(f, "integrity constraint #{index} is violated")
            }
            CertifyError::ChoiceBounds { index, chosen } => {
                write!(f, "choice #{index} bounds violated ({chosen} chosen)")
            }
            CertifyError::NotMinimal { atoms } => {
                write!(f, "model is not reduct-minimal; unfounded: {atoms:?}")
            }
            CertifyError::CostMismatch { claimed, actual } => {
                write!(f, "cost vector {claimed:?} does not match recomputed {actual:?}")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

fn body_holds(model: &FxHashSet<AtomId>, pos: &[AtomId], neg: &[AtomId]) -> bool {
    pos.iter().all(|a| model.contains(a)) && !neg.iter().any(|a| model.contains(a))
}

/// Certify that `model` is a stable model of `gp`: classical
/// satisfaction of every rule/constraint/choice plus reduct-minimality.
pub fn certify_atoms(gp: &GroundProgram, model: &FxHashSet<AtomId>) -> Result<(), CertifyError> {
    // Every true atom must come from the grounder's universe, and every
    // certain atom (a negation-free consequence of facts) must hold.
    for &a in model {
        if !gp.possible.contains(&a) {
            return Err(CertifyError::ForeignAtom {
                atom: gp.store.format_atom(a),
            });
        }
    }
    for &a in &gp.certain {
        if !model.contains(&a) {
            return Err(CertifyError::MissingCertain {
                atom: gp.store.format_atom(a),
            });
        }
    }

    // Classical satisfaction.
    for (i, r) in gp.rules.iter().enumerate() {
        if body_holds(model, &r.pos, &r.neg) && !model.contains(&r.head) {
            return Err(CertifyError::UnsatisfiedRule { index: i });
        }
    }
    for (i, c) in gp.constraints.iter().enumerate() {
        if body_holds(model, &c.pos, &c.neg) {
            return Err(CertifyError::ViolatedConstraint { index: i });
        }
    }
    for (i, c) in gp.choices.iter().enumerate() {
        if body_holds(model, &c.pos, &c.neg) {
            let chosen = c.elements.iter().filter(|e| model.contains(e)).count();
            let low_ok = c.lower.is_none_or(|l| chosen as u64 >= l as u64);
            let high_ok = c.upper.is_none_or(|u| chosen as u64 <= u as u64);
            if !low_ok || !high_ok {
                return Err(CertifyError::ChoiceBounds { index: i, chosen });
            }
        }
    }

    // Reduct minimality: the least model of the Gelfond–Lifschitz reduct
    // must equal the candidate. Naive fixpoint — restart the scan after
    // every derivation so correctness is obvious by inspection.
    let mut least: FxHashSet<AtomId> = FxHashSet::default();
    loop {
        let mut changed = false;
        for r in &gp.rules {
            // The reduct keeps a rule iff no negated atom is true in the
            // candidate; the reduct rule fires once its positive body is
            // in the least model.
            if !r.neg.iter().any(|a| model.contains(a))
                && r.pos.iter().all(|a| least.contains(a))
                && least.insert(r.head)
            {
                changed = true;
            }
        }
        for c in &gp.choices {
            // A choice whose reduct body fires justifies exactly those of
            // its elements the candidate chose.
            if !c.neg.iter().any(|a| model.contains(a))
                && c.pos.iter().all(|a| least.contains(a))
            {
                for &e in c.elements.iter() {
                    if model.contains(&e) && least.insert(e) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let unfounded: Vec<AtomId> = model.iter().copied().filter(|a| !least.contains(a)).collect();
    if !unfounded.is_empty() {
        let mut atoms: Vec<String> = unfounded.iter().map(|&a| gp.store.format_atom(a)).collect();
        atoms.sort();
        return Err(CertifyError::NotMinimal { atoms });
    }
    Ok(())
}

/// Recompute the `(priority, cost)` vector of `model` under `gp`'s
/// `#minimize` statements, highest priority first. Each distinct
/// `(priority, weight, tuple)` contributes `weight` once if any of its
/// conditions holds in the model. One entry per priority occurring in
/// the ground program, even when its cost is zero.
pub fn evaluate_cost(gp: &GroundProgram, model: &FxHashSet<AtomId>) -> Vec<(i64, i64)> {
    let mut charged: FxHashSet<(i64, i64, &[TermId])> = FxHashSet::default();
    let mut per_priority: FxHashMap<i64, i64> = FxHashMap::default();
    for m in &gp.minimize {
        per_priority.entry(m.priority).or_insert(0);
        if body_holds(model, &m.pos, &m.neg) && charged.insert((m.priority, m.weight, &m.tuple)) {
            *per_priority.entry(m.priority).or_insert(0) += m.weight;
        }
    }
    let mut out: Vec<(i64, i64)> = per_priority.into_iter().collect();
    out.sort_unstable_by_key(|&(priority, _)| std::cmp::Reverse(priority));
    out
}

/// Full certificate for a candidate given as a raw atom set plus a
/// claimed cost vector: stability ([`certify_atoms`]) and cost
/// tightness ([`evaluate_cost`]). Pass `None` to skip the cost check
/// (e.g. for models from enumeration, which record no cost).
pub fn certify(
    gp: &GroundProgram,
    model: &FxHashSet<AtomId>,
    claimed_cost: Option<&[(i64, i64)]>,
) -> Result<(), CertifyError> {
    certify_atoms(gp, model)?;
    if let Some(claimed) = claimed_cost {
        let actual = evaluate_cost(gp, model);
        if claimed != actual.as_slice() {
            return Err(CertifyError::CostMismatch {
                claimed: claimed.to_vec(),
                actual,
            });
        }
    }
    Ok(())
}

/// Certificate-check a production [`Model`] against the ground program
/// it carries. Models from [`crate::Solver::solve`] also have their
/// recorded cost vector verified; models from enumeration carry no cost
/// vector and skip that part.
pub fn certify_model(m: &Model) -> Result<(), CertifyError> {
    let cost = if m.cost.is_empty() && !m.ground().minimize.is_empty() {
        None // enumeration ignores #minimize and records no cost
    } else {
        Some(m.cost.as_slice())
    };
    certify(m.ground(), m.atom_set(), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::parser::parse_program;
    use crate::solve::{SolveOutcome, Solver};

    fn solved_model(text: &str) -> Model {
        match Solver::new().solve(&parse_program(text).unwrap()).unwrap().0 {
            SolveOutcome::Optimal(m) => m,
            SolveOutcome::Unsat => panic!("unexpected UNSAT"),
        }
    }

    #[test]
    fn production_models_certify() {
        for text in [
            "a. b :- a.",
            "a :- not b. b :- not a.",
            "{ p }. a :- p. :- not a.",
            r#"cand("x"). cand("y"). 1 { pick(V) : cand(V) } 1.
               cost("x",1). cost("y",2).
               #minimize { C@1,V : pick(V), cost(V,C) }."#,
        ] {
            let m = solved_model(text);
            certify_model(&m).unwrap();
        }
    }

    fn atoms_named(gp: &crate::ground::GroundProgram, names: &[&str]) -> FxHashSet<AtomId> {
        gp.possible
            .iter()
            .copied()
            .filter(|&a| names.contains(&gp.store.format_atom(a).as_str()))
            .collect()
    }

    #[test]
    fn flipped_atom_is_rejected() {
        // {a} satisfies the choice but leaves "b :- a." firing headless.
        let gp = ground(&parse_program("{ a }. b :- a.").unwrap()).unwrap();
        let model = atoms_named(&gp, &["a"]);
        assert_eq!(model.len(), 1);
        assert!(matches!(
            certify_atoms(&gp, &model),
            Err(CertifyError::UnsatisfiedRule { .. })
        ));
    }

    #[test]
    fn dropped_fact_is_rejected() {
        let gp = ground(&parse_program("a. b :- a.").unwrap()).unwrap();
        let model = atoms_named(&gp, &["a"]);
        assert!(matches!(
            certify_atoms(&gp, &model),
            Err(CertifyError::MissingCertain { .. })
        ));
    }

    #[test]
    fn self_supported_atom_is_rejected() {
        // {a, b} classically satisfies the loop "a :- b. b :- a." (the
        // c-rule gives both atoms grounder support) but is unfounded
        // once c is false.
        let gp = ground(&parse_program("{ c }. a :- c. a :- b. b :- a.").unwrap()).unwrap();
        let model = atoms_named(&gp, &["a", "b"]);
        assert_eq!(model.len(), 2);
        assert!(matches!(
            certify_atoms(&gp, &model),
            Err(CertifyError::NotMinimal { .. })
        ));
    }

    #[test]
    fn dishonest_cost_is_rejected() {
        let m = solved_model(
            r#"a. #minimize { 3@1 : a }."#,
        );
        assert_eq!(m.cost, vec![(1, 3)]);
        let lie = vec![(1, 0)];
        assert!(matches!(
            certify(m.ground(), m.atom_set(), Some(&lie)),
            Err(CertifyError::CostMismatch { .. })
        ));
    }
}
