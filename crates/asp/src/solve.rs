//! The solve orchestrator: ground → translate → CDCL search → stability
//! CEGAR → lexicographic branch-and-bound optimization.

use crate::cancel::CancelToken;
use crate::cdcl::{Lit, Sat, SatConfig, SatResult};
use crate::cnf::{add_upper_bound, add_upper_bound_guarded, translate, BoundCounter, Translation};
use crate::ground::{ground_parallel, GroundLimits, GroundProgram};
use crate::model::Model;
use crate::preprocess::{PreprocessConfig, PreprocessStats};
use crate::program::Program;
use crate::stability::{check_stability, Stability};
use crate::term::AtomId;
use crate::{AspError, Result};
use rustc_hash::FxHashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Grounding resource limits.
    pub limits: GroundLimits,
    /// Maximum stability-restart (CEGAR) iterations before giving up.
    pub max_stability_loops: usize,
    /// Conflict budget per SAT call (`u64::MAX` = unlimited).
    pub conflict_budget: u64,
    /// Worker threads for grounding joins (1 = sequential). The grounded
    /// program is bit-identical at every setting; see
    /// [`crate::ground::ground_parallel`].
    pub ground_threads: usize,
    /// CNF preprocessing run once per translation (ASP-visible variables
    /// are frozen automatically; see [`crate::preprocess`]).
    pub preprocess: PreprocessConfig,
    /// CDCL search-heuristic toggles (phase saving, restarts, LBD
    /// deletion).
    pub sat: SatConfig,
    /// Cooperative cancellation: polled in the CDCL search loop
    /// alongside the conflict budget. The default
    /// [`CancelToken::none`] never fires.
    pub cancel: CancelToken,
    /// Incremental `#minimize` branch-and-bound: keep learned clauses
    /// and saved phases across bound tightenings, build one shared
    /// [`BoundCounter`] circuit per priority level (each probe/pin
    /// asserts a tighter bound with a single clause), and skip the
    /// post-pin re-solve when the incumbent assignment still encodes
    /// the best model. When `false` every bound probe rebuilds the
    /// counter and searches from scratch (the seed engine's behavior).
    pub incremental_bnb: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            limits: GroundLimits::default(),
            max_stability_loops: 10_000,
            conflict_budget: u64::MAX,
            ground_threads: 1,
            preprocess: PreprocessConfig::default(),
            sat: SatConfig::default(),
            cancel: CancelToken::none(),
            incremental_bnb: true,
        }
    }
}

impl SolverConfig {
    /// The seed engine: no preprocessing, no search heuristics, and
    /// from-scratch branch-and-bound — the baseline the modern engine is
    /// benchmarked and differential-tested against.
    pub fn seed_engine() -> Self {
        SolverConfig {
            preprocess: PreprocessConfig::disabled(),
            sat: SatConfig::seed_engine(),
            incremental_bnb: false,
            ..Default::default()
        }
    }
}

/// Statistics for one `solve` call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Distinct possible atoms after grounding.
    pub ground_atoms: usize,
    /// Emitted ground rules (including facts).
    pub ground_rules: usize,
    /// Emitted ground choice instances.
    pub ground_choices: usize,
    /// Emitted ground constraints.
    pub ground_constraints: usize,
    /// SAT variables allocated.
    pub sat_vars: usize,
    /// CDCL conflicts.
    pub conflicts: u64,
    /// CDCL decisions.
    pub decisions: u64,
    /// CDCL literal propagations.
    pub propagations: u64,
    /// CDCL restarts.
    pub restarts: u64,
    /// Learnt-clause database reductions.
    pub reductions: u64,
    /// Learnt clauses deleted by reductions.
    pub deleted_clauses: u64,
    /// Preprocessing: entailed unit literals fixed.
    pub pre_fixed_literals: u64,
    /// Preprocessing: units found by failed-literal probing.
    pub pre_failed_literals: u64,
    /// Preprocessing: pure-literal variables removed.
    pub pre_pure_literals: u64,
    /// Preprocessing: clauses removed by subsumption.
    pub pre_subsumed_clauses: u64,
    /// Preprocessing: clauses strengthened by self-subsuming resolution.
    pub pre_strengthened_clauses: u64,
    /// Preprocessing: variables removed by bounded variable elimination.
    pub pre_eliminated_vars: u64,
    /// Stability (CEGAR) restarts.
    pub stability_restarts: u64,
    /// Optimization probes (bound-and-resolve steps).
    pub optimize_probes: u64,
    /// Core extraction: members in the initial (final-conflict) core.
    pub explain_core_initial: usize,
    /// Core extraction: members after deletion minimization.
    pub explain_core_minimized: usize,
    /// Core extraction: deletion probes run.
    pub explain_probes: u64,
    /// Core extraction: wall time spent in `explain_ground`.
    pub explain_time: Duration,
    /// Wall time spent grounding.
    pub ground_time: Duration,
    /// Wall time spent in translation + search + optimization.
    pub solve_time: Duration,
}

/// Outcome of solving a program.
pub enum SolveOutcome {
    /// An optimal stable model (or just a stable model when the program
    /// has no `#minimize` statements).
    Optimal(Model),
    /// No stable model exists.
    Unsat,
}

/// A ground program with its CNF translation and a pristine (pre-search)
/// SAT instance — the unit of ground-program memoization. Produced by
/// [`Solver::translate_ground`]; every [`Solver::solve_translated`] call
/// clones the SAT instance, so repeated re-solves start from identical
/// state and never contaminate one another.
pub struct TranslatedProgram {
    gp: Arc<GroundProgram>,
    sat: Sat,
    tr: Translation,
    pre: PreprocessStats,
}

impl TranslatedProgram {
    /// The underlying ground program.
    pub fn ground(&self) -> &Arc<GroundProgram> {
        &self.gp
    }

    /// Statistics from the preprocessing pass run at translation time
    /// (all zero when preprocessing is disabled).
    pub fn preprocess_stats(&self) -> PreprocessStats {
        self.pre
    }
}

/// Freeze every SAT variable the ASP layers reference after translation:
/// atom variables (model extraction, enumeration blocking, loop
/// clauses), the constant-true variable, rule/choice body literals (loop
/// clauses), and cost literals (bound circuits, cost evaluation). Only
/// auxiliary encoding variables — sequential-counter internals — remain
/// eliminable.
pub(crate) fn frozen_vars(tr: &Translation, num_vars: usize) -> Vec<bool> {
    let mut frozen = vec![false; num_vars];
    frozen[tr.true_var as usize] = true;
    for &v in &tr.atom_var {
        frozen[v as usize] = true;
    }
    for &l in &tr.rule_body {
        frozen[l.var() as usize] = true;
    }
    for &l in &tr.choice_body {
        frozen[l.var() as usize] = true;
    }
    for (_, items) in &tr.cost {
        for &(_, l) in items {
            frozen[l.var() as usize] = true;
        }
    }
    frozen
}

/// The ASP solver facade.
#[derive(Default)]
pub struct Solver {
    config: SolverConfig,
}

impl Solver {
    /// Solver with default configuration.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver { config }
    }

    /// Ground and solve `program`, optimizing `#minimize` objectives
    /// lexicographically (highest priority first).
    pub fn solve(&self, program: &Program) -> Result<(SolveOutcome, SolveStats)> {
        let t0 = Instant::now();
        let gp = self.ground(program)?;
        let ground_time = t0.elapsed();
        let (outcome, mut stats) = self.solve_ground(gp)?;
        stats.ground_time = ground_time;
        Ok((outcome, stats))
    }

    /// Ground `program` under this solver's limits and
    /// [`SolverConfig::ground_threads`], returning a shareable handle
    /// suitable for [`Solver::solve_ground`] — the ground-program
    /// memoization entry point.
    pub fn ground(&self, program: &Program) -> Result<Arc<GroundProgram>> {
        Ok(Arc::new(ground_parallel(
            program,
            self.config.limits,
            self.config.ground_threads,
        )?))
    }

    /// Solve an already-grounded program. Equivalent to
    /// [`Solver::translate_ground`] followed by
    /// [`Solver::solve_translated`]; one cached [`GroundProgram`] can be
    /// re-solved any number of times, and because the engine is
    /// deterministic a re-solve returns the same outcome as the original
    /// solve. `stats.ground_time` is zero here (the caller knows whether
    /// grounding actually ran); `stats.solve_time` includes translation.
    pub fn solve_ground(&self, gp: Arc<GroundProgram>) -> Result<(SolveOutcome, SolveStats)> {
        let t1 = Instant::now();
        let tp = self.translate_ground(gp);
        let (outcome, mut stats) = self.solve_translated(&tp)?;
        stats.solve_time = t1.elapsed();
        Ok((outcome, stats))
    }

    /// Translate an already-grounded program to CNF once, producing a
    /// [`TranslatedProgram`] that [`Solver::solve_translated`] can
    /// re-solve without repeating the translation — the second layer of
    /// ground-program memoization.
    pub fn translate_ground(&self, gp: Arc<GroundProgram>) -> TranslatedProgram {
        let mut sat = Sat::new();
        sat.set_conflict_budget(self.config.conflict_budget);
        sat.set_search_config(self.config.sat);
        let tr = translate(&gp, &mut sat);
        // Preprocess once here so memoized re-solves (which clone the
        // pristine instance) inherit the simplified formula for free.
        let pre = if self.config.preprocess.enabled {
            let frozen = frozen_vars(&tr, sat.num_vars());
            sat.preprocess(&self.config.preprocess, &frozen)
        } else {
            PreprocessStats::default()
        };
        TranslatedProgram { gp, sat, tr, pre }
    }

    /// Solve a translated program. The pristine SAT instance is cloned
    /// per call (so repeated solves are independent and start from
    /// identical state) and the conflict budget is re-applied from this
    /// solver's config, since the budget is a per-solve knob rather than
    /// part of the translation.
    pub fn solve_translated(&self, tp: &TranslatedProgram) -> Result<(SolveOutcome, SolveStats)> {
        let mut stats = SolveStats {
            ground_atoms: tp.gp.possible.len(),
            ground_rules: tp.gp.rules.len(),
            ground_choices: tp.gp.choices.len(),
            ground_constraints: tp.gp.constraints.len(),
            ..Default::default()
        };

        let t1 = Instant::now();
        let mut sat = tp.sat.clone();
        sat.set_conflict_budget(self.config.conflict_budget);
        sat.set_search_config(self.config.sat);
        sat.set_cancel(self.config.cancel.clone());
        stats.sat_vars = sat.num_vars();

        let outcome = self.search(tp.gp.clone(), &tp.tr, &mut sat, &mut stats)?;
        stats.solve_time = t1.elapsed();
        stats.conflicts = sat.stats.conflicts;
        stats.decisions = sat.stats.decisions;
        stats.propagations = sat.stats.propagations;
        stats.restarts = sat.stats.restarts;
        stats.reductions = sat.stats.reductions;
        stats.deleted_clauses = sat.stats.deleted_clauses;
        stats.pre_fixed_literals = tp.pre.fixed_literals;
        stats.pre_failed_literals = tp.pre.failed_literals;
        stats.pre_pure_literals = tp.pre.pure_literals;
        stats.pre_subsumed_clauses = tp.pre.subsumed_clauses;
        stats.pre_strengthened_clauses = tp.pre.strengthened_clauses;
        stats.pre_eliminated_vars = tp.pre.eliminated_vars;
        Ok((outcome, stats))
    }

    /// Find a stable model under `assumps`, adding loop clauses for
    /// unfounded sets until stable (CEGAR).
    fn stable_solve(
        &self,
        gp: &GroundProgram,
        tr: &Translation,
        sat: &mut Sat,
        assumps: &[Lit],
        stats: &mut SolveStats,
    ) -> Result<Option<FxHashSet<AtomId>>> {
        for _ in 0..self.config.max_stability_loops {
            match sat.solve_with(assumps) {
                SatResult::Unsat => return Ok(None),
                SatResult::Unknown => {
                    return Err(AspError::BudgetExhausted {
                        conflicts: sat.stats.conflicts,
                        decisions: sat.stats.decisions,
                        propagations: sat.stats.propagations,
                        restarts: sat.stats.restarts,
                    });
                }
                SatResult::Cancelled { deadline } => {
                    return Err(AspError::Cancelled { deadline });
                }
                SatResult::Sat => {}
            }
            let model: FxHashSet<AtomId> = gp
                .possible
                .iter()
                .copied()
                .filter(|a| sat.value(tr.atom_var[a.0 as usize]))
                .collect();
            match check_stability(gp, &model) {
                Stability::Stable => return Ok(Some(model)),
                Stability::Unfounded(unfounded) => {
                    stats.stability_restarts += 1;
                    self.add_loop_clauses(gp, tr, sat, &unfounded);
                }
            }
        }
        Err(AspError::ResourceLimit(
            "stability CEGAR loop exceeded max iterations".into(),
        ))
    }

    /// For unfounded set `u`: each atom may only be true when some
    /// external support (a rule whose positive body avoids the set) has a
    /// true body.
    pub(crate) fn add_loop_clauses(
        &self,
        gp: &GroundProgram,
        tr: &Translation,
        sat: &mut Sat,
        u: &[AtomId],
    ) {
        let uset: FxHashSet<AtomId> = u.iter().copied().collect();
        let mut external: Vec<Lit> = Vec::new();
        for (ri, r) in gp.rules.iter().enumerate() {
            if uset.contains(&r.head) && !r.pos.iter().any(|p| uset.contains(p)) {
                external.push(tr.rule_body[ri]);
            }
        }
        for (ci, c) in gp.choices.iter().enumerate() {
            if c.elements.iter().any(|e| uset.contains(e))
                && !c.pos.iter().any(|p| uset.contains(p))
            {
                external.push(tr.choice_body[ci]);
            }
        }
        external.sort_unstable();
        external.dedup();
        for &a in u {
            let mut cl: Vec<Lit> = vec![tr.lit(a).negate()];
            cl.extend(external.iter().copied());
            sat.add_clause(&cl);
        }
    }

    /// Evaluate the cost at one priority level for a model, by summing
    /// the weights of cost literals the model satisfies.
    fn eval_cost(sat: &Sat, items: &[(i64, Lit)]) -> i64 {
        items
            .iter()
            .filter(|&&(_, l)| sat.value(l.var()) != l.is_neg())
            .map(|&(w, _)| w)
            .sum()
    }

    fn search(
        &self,
        gp: Arc<GroundProgram>,
        tr: &Translation,
        sat: &mut Sat,
        stats: &mut SolveStats,
    ) -> Result<SolveOutcome> {
        let Some(mut model) = self.stable_solve(&gp, tr, sat, &[], stats)? else {
            return Ok(SolveOutcome::Unsat);
        };

        // Lexicographic branch-and-bound, highest priority first. The
        // cost vector snapshot must be taken right after each SAT call
        // (the assignment is clobbered by later calls).
        let mut best_costs: Vec<(i64, i64)> = tr
            .cost
            .iter()
            .map(|(p, items)| (*p, Self::eval_cost(sat, items)))
            .collect();

        for level in 0..tr.cost.len() {
            let (_, items) = &tr.cost[level];
            // Incremental mode builds ONE counter circuit per priority
            // level, sized for the incumbent cost; every descent probe
            // and the final pin then assert a tighter bound with a
            // single clause over the shared counter outputs. The seed
            // path below rebuilds a fresh O(n * bound) circuit per
            // probe, which dominates warm-solve time on optimization
            // workloads.
            let mut counter: Option<BoundCounter> = None;
            // Set when the last SAT call at this level ended UNSAT (a
            // failed probe), i.e. the solver's assignment no longer
            // encodes `model` and a re-solve is needed before trusting
            // `eval_cost` again.
            let mut clobbered = false;
            loop {
                let current = best_costs[level].1;
                if current == 0 {
                    break; // weights are non-negative: 0 is optimal
                }
                // Non-incremental mode: discard everything learned so
                // far and re-search each bound from scratch, like the
                // seed engine did.
                if !self.config.incremental_bnb {
                    sat.forget_learnts();
                }
                // Probe: can we do strictly better?
                let act = Lit::pos(sat.new_var());
                if self.config.incremental_bnb {
                    if counter.is_none() {
                        counter = Some(BoundCounter::build(sat, items, current));
                    }
                    counter
                        .as_ref()
                        .expect("built above")
                        .assert_upper(sat, current - 1, Some(act));
                } else {
                    add_upper_bound_guarded(sat, items, current - 1, act);
                }
                stats.optimize_probes += 1;
                match self.stable_solve(&gp, tr, sat, &[act], stats)? {
                    Some(m) => {
                        model = m;
                        clobbered = false;
                        // Snapshot the full cost vector of the improved
                        // model; higher priorities are pinned so they
                        // cannot have regressed.
                        best_costs = tr
                            .cost
                            .iter()
                            .map(|(p, its)| (*p, Self::eval_cost(sat, its)))
                            .collect();
                        // Retire the probe circuit.
                        sat.add_clause(&[act.negate()]);
                    }
                    None => {
                        // No improvement possible: retire the probe and
                        // pin this level at its optimum permanently.
                        sat.add_clause(&[act.negate()]);
                        clobbered = true;
                        break;
                    }
                }
            }
            // Pin the optimum for this priority level so optimizing lower
            // levels cannot regress it. The incumbent model satisfies
            // the pin by construction (its own cost at this level IS the
            // bound).
            match &counter {
                // The counter was built at the level-entry incumbent,
                // which the optimum never exceeds.
                Some(c) => {
                    c.assert_upper(sat, best_costs[level].1, None);
                }
                None => {
                    add_upper_bound(sat, items, best_costs[level].1);
                }
            }
            if !self.config.incremental_bnb {
                sat.forget_learnts();
            }
            // Re-establish a model satisfying all pins when the last
            // solve at this level ended UNSAT-under-assumptions (which
            // clobbers assignments). The incremental engine skips the
            // re-solve whenever the solver's assignment still encodes
            // `model` — on descent-free workloads that removes one full
            // SAT solve per priority level; the seed engine re-solves
            // unconditionally, as the baseline always did.
            if clobbered || !self.config.incremental_bnb {
                match self.stable_solve(&gp, tr, sat, &[], stats)? {
                    Some(m) => model = m,
                    None => {
                        return Err(AspError::Internal(
                            "pinned optimum became unsatisfiable".into(),
                        ));
                    }
                }
                best_costs = tr
                    .cost
                    .iter()
                    .map(|(p, its)| (*p, Self::eval_cost(sat, its)))
                    .collect();
            }
        }

        Ok(SolveOutcome::Optimal(Model::new(gp, model, best_costs)))
    }

    /// Enumerate up to `limit` stable models (ignoring `#minimize`
    /// statements), in search order. Returns fewer when the program has
    /// fewer models.
    pub fn enumerate(&self, program: &Program, limit: usize) -> Result<Vec<Model>> {
        let mut stats = SolveStats::default();
        let gp = self.ground(program)?;
        // Shares the translate + preprocess path with `solve`; blocking
        // clauses range over atom variables, which preprocessing froze,
        // so enumeration over the simplified instance is exact.
        let tp = self.translate_ground(gp);
        let mut sat = tp.sat.clone();
        sat.set_conflict_budget(self.config.conflict_budget);
        sat.set_search_config(self.config.sat);
        sat.set_cancel(self.config.cancel.clone());
        let (gp, tr) = (&tp.gp, &tp.tr);
        let mut out = Vec::new();
        while out.len() < limit {
            let Some(model) = self.stable_solve(gp, tr, &mut sat, &[], &mut stats)? else {
                break;
            };
            // Block this assignment over the possible-atom universe.
            let block: Vec<Lit> = gp
                .possible
                .iter()
                .map(|&a| {
                    let l = tr.lit(a);
                    if model.contains(&a) {
                        l.negate()
                    } else {
                        l
                    }
                })
                .collect();
            out.push(Model::new(gp.clone(), model, Vec::new()));
            if !sat.add_clause(&block) {
                break;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn solve_text(text: &str) -> (SolveOutcome, SolveStats) {
        Solver::new()
            .solve(&parse_program(text).unwrap())
            .unwrap()
    }

    fn model_of(text: &str) -> Model {
        match solve_text(text).0 {
            SolveOutcome::Optimal(m) => m,
            SolveOutcome::Unsat => panic!("unexpected UNSAT"),
        }
    }

    #[test]
    fn facts_only() {
        let m = model_of(r#"a. b("x")."#);
        assert_eq!(m.len(), 2);
        assert!(m.holds_str("b", &["x"]));
    }

    #[test]
    fn unsat_constraint() {
        let (out, _) = solve_text("a. :- a.");
        assert!(matches!(out, SolveOutcome::Unsat));
    }

    #[test]
    fn choice_with_minimize_picks_cheapest() {
        // Choosing v2 costs 2, v1 costs 1; exactly one must be chosen.
        let m = model_of(
            r#"
            cand("v1"). cand("v2").
            1 { pick(V) : cand(V) } 1.
            cost("v1", 1). cost("v2", 2).
            #minimize { C@1,V : pick(V), cost(V, C) }.
        "#,
        );
        assert!(m.holds_str("pick", &["v1"]));
        assert!(!m.holds_str("pick", &["v2"]));
        assert_eq!(m.cost, vec![(1, 1)]);
    }

    #[test]
    fn lexicographic_priorities() {
        // Priority 2 dominates: must avoid "expensive" even though that
        // forces higher priority-1 cost.
        let m = model_of(
            r#"
            opt("a"). opt("b").
            1 { pick(V) : opt(V) } 1.
            p2cost("a", 5). p2cost("b", 1).
            p1cost("a", 0). p1cost("b", 100).
            #minimize { C@2,V : pick(V), p2cost(V, C) }.
            #minimize { C@1,V : pick(V), p1cost(V, C) }.
        "#,
        );
        assert!(m.holds_str("pick", &["b"]));
        assert_eq!(m.cost, vec![(2, 1), (1, 100)]);
    }

    #[test]
    fn minimize_counts_each_tuple_once() {
        // Two conditions deriving the same tuple contribute once.
        let m = model_of(
            r#"
            a. b.
            t :- a. t :- b.
            #minimize { 7@1,"same" : a ; 7@1,"same" : b }.
        "#,
        );
        assert_eq!(m.cost, vec![(1, 7)]);
    }

    #[test]
    fn stability_cegar_rejects_self_support() {
        // The only completion models are {} + p-false branch artifacts;
        // an a/b loop without p must not survive. With the constraint
        // requiring a, the solver must choose p (the external support).
        let m = model_of(
            r#"
            { p }.
            a :- p.
            a :- b.
            b :- a.
            :- not a.
            #minimize { 1@1 : p }.
        "#,
        );
        // Even though minimizing p would prefer p=false, stability forces
        // p=true (otherwise a is unfounded).
        assert!(m.holds_str("p", &[]));
        assert!(m.holds_str("a", &[]));
        let (_, stats) = solve_text(
            r#"
            { p }.
            a :- p.
            a :- b.
            b :- a.
            :- not a.
            #minimize { 1@1 : p }.
        "#,
        );
        // At least one CEGAR restart or probe happened along the way.
        let _ = stats;
    }

    #[test]
    fn graph_coloring_three_nodes() {
        let m = model_of(
            r#"
            node(1). node(2). node(3).
            edge(1,2). edge(2,3). edge(1,3).
            color("r"). color("g"). color("b").
            1 { assign(N,C) : color(C) } 1 :- node(N).
            :- edge(A,B), assign(A,C), assign(B,C).
        "#,
        );
        let assigns = m.atoms_of("assign");
        assert_eq!(assigns.len(), 3);
        // All three nodes distinct colors (triangle).
        let colors: Vec<&str> = assigns
            .iter()
            .map(|args| m.as_str(args[1]).unwrap())
            .collect();
        let unique: std::collections::BTreeSet<&str> = colors.iter().copied().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn coloring_two_colors_triangle_unsat() {
        let (out, _) = solve_text(
            r#"
            node(1). node(2). node(3).
            edge(1,2). edge(2,3). edge(1,3).
            color("r"). color("g").
            1 { assign(N,C) : color(C) } 1 :- node(N).
            :- edge(A,B), assign(A,C), assign(B,C).
        "#,
        );
        assert!(matches!(out, SolveOutcome::Unsat));
    }

    #[test]
    fn paper_style_version_selection() {
        // Mimics §5.1: exactly one version per node, prefer the newest
        // (lower penalty index = newer).
        let m = model_of(
            r#"
            node("example").
            pkg_fact("example", version_declared("1.1.0", 0)).
            pkg_fact("example", version_declared("1.0.0", 1)).
            1 { attr("version", node(P), V) : pkg_fact(P, version_declared(V, I)) } 1 :-
                node(P).
            #minimize { I@1,P : attr("version", node(P), V),
                        pkg_fact(P, version_declared(V, I)) }.
        "#,
        );
        assert!(m
            .render()
            .contains(&"attr(\"version\",node(\"example\"),\"1.1.0\")".to_string()));
        assert_eq!(m.cost, vec![(1, 0)]);
    }

    #[test]
    fn stats_are_populated() {
        let (_, stats) = solve_text("a. b :- a.");
        assert_eq!(stats.ground_rules, 2);
        assert!(stats.ground_atoms >= 2);
        assert!(stats.sat_vars > 0);
    }

    #[test]
    fn seed_engine_matches_modern_engine() {
        // The all-off configuration must reach the same optima and the
        // same satisfiability as the all-on default.
        let programs = [
            r#"
            cand("v1"). cand("v2"). cand("v3").
            1 { pick(V) : cand(V) } 1.
            cost("v1", 3). cost("v2", 1). cost("v3", 2).
            #minimize { C@1,V : pick(V), cost(V, C) }.
            "#,
            r#"
            node(1). node(2). node(3).
            edge(1,2). edge(2,3). edge(1,3).
            color("r"). color("g").
            1 { assign(N,C) : color(C) } 1 :- node(N).
            :- edge(A,B), assign(A,C), assign(B,C).
            "#,
            "a :- not b. b :- not a. :- b.",
        ];
        for text in programs {
            let program = parse_program(text).unwrap();
            let modern = Solver::new().solve(&program).unwrap().0;
            let seed = Solver::with_config(SolverConfig::seed_engine())
                .solve(&program)
                .unwrap()
                .0;
            match (&modern, &seed) {
                (SolveOutcome::Optimal(a), SolveOutcome::Optimal(b)) => {
                    assert_eq!(a.cost, b.cost, "optima diverge on {text}");
                }
                (SolveOutcome::Unsat, SolveOutcome::Unsat) => {}
                _ => panic!("satisfiability diverges on {text}"),
            }
        }
    }

    #[test]
    fn preprocessing_stats_surface_in_solve_stats() {
        // Choice-rule cardinality encodings create eliminable
        // sequential-counter auxiliaries; the default config must report
        // preprocessing work on them.
        let (_, stats) = solve_text(
            r#"
            cand("a"). cand("b"). cand("c"). cand("d").
            1 { pick(V) : cand(V) } 2.
            :- pick("a"), pick("b").
        "#,
        );
        assert!(
            stats.pre_fixed_literals
                + stats.pre_pure_literals
                + stats.pre_subsumed_clauses
                + stats.pre_strengthened_clauses
                + stats.pre_eliminated_vars
                > 0,
            "preprocessing found nothing: {stats:?}"
        );
        assert!(stats.propagations > 0, "propagation accounting: {stats:?}");
        assert!(stats.decisions > 0, "decision accounting: {stats:?}");
    }

    #[test]
    fn incremental_and_scratch_bnb_agree() {
        let text = r#"
            item(1). item(2). item(3). item(4).
            { take(I) : item(I) }.
            :- take(1), take(2).
            covered :- take(3). covered :- take(4).
            :- not covered.
            w(1,4). w(2,3). w(3,2). w(4,5).
            #minimize { W@1,I : take(I), w(I,W) }.
        "#;
        let program = parse_program(text).unwrap();
        let scratch_cfg = SolverConfig {
            incremental_bnb: false,
            ..Default::default()
        };
        let (inc, _) = Solver::new().solve(&program).unwrap();
        let (scr, _) = Solver::with_config(scratch_cfg).solve(&program).unwrap();
        match (inc, scr) {
            (SolveOutcome::Optimal(a), SolveOutcome::Optimal(b)) => {
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.cost, vec![(1, 2)], "take(3) alone is optimal");
            }
            _ => panic!("expected optima from both modes"),
        }
    }

    #[test]
    fn expired_deadline_cancels_structurally() {
        // A token that is already past its deadline must surface as a
        // typed Cancelled error (deadline=true), never a panic or hang.
        let program = parse_program(
            r#"
            node(1). node(2). node(3).
            edge(1,2). edge(2,3). edge(1,3).
            color("r"). color("g"). color("b").
            1 { assign(N,C) : color(C) } 1 :- node(N).
            :- edge(A,B), assign(A,C), assign(B,C).
        "#,
        )
        .unwrap();
        let solver = Solver::with_config(SolverConfig {
            cancel: CancelToken::with_deadline(Duration::ZERO),
            ..Default::default()
        });
        match solver.solve(&program) {
            Err(AspError::Cancelled { deadline: true }) => {}
            Err(other) => panic!("expected deadline cancellation, got {other}"),
            Ok(_) => panic!("expected deadline cancellation, got an answer"),
        }
    }

    #[test]
    fn manual_cancel_is_distinguishable_from_deadline() {
        let program = parse_program("{ a }. { b }. :- a, b.").unwrap();
        let token = CancelToken::new();
        token.cancel();
        let solver = Solver::with_config(SolverConfig {
            cancel: token,
            ..Default::default()
        });
        match solver.solve(&program) {
            Err(AspError::Cancelled { deadline: false }) => {}
            Err(other) => panic!("expected manual cancellation, got {other}"),
            Ok(_) => panic!("expected manual cancellation, got an answer"),
        }
    }

    #[test]
    fn unfired_token_changes_nothing() {
        let program = parse_program(
            r#"
            cand("v1"). cand("v2").
            1 { pick(V) : cand(V) } 1.
            cost("v1", 1). cost("v2", 2).
            #minimize { C@1,V : pick(V), cost(V, C) }.
        "#,
        )
        .unwrap();
        let plain = Solver::new().solve(&program).unwrap().0;
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        let guarded = Solver::with_config(SolverConfig {
            cancel: token,
            ..Default::default()
        })
        .solve(&program)
        .unwrap()
        .0;
        match (plain, guarded) {
            (SolveOutcome::Optimal(a), SolveOutcome::Optimal(b)) => {
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.render(), b.render());
            }
            _ => panic!("expected optima from both"),
        }
    }

    #[test]
    fn optimum_zero_skips_probing() {
        let m = model_of(
            r#"
            { p }.
            #minimize { 1@1 : p }.
        "#,
        );
        assert!(!m.holds_str("p", &[]));
        assert_eq!(m.cost, vec![(1, 0)]);
    }
}

#[cfg(test)]
mod enumerate_tests {
    use super::*;
    use crate::parser::parse_program;

    fn models_of(text: &str, limit: usize) -> Vec<Model> {
        Solver::new()
            .enumerate(&parse_program(text).unwrap(), limit)
            .unwrap()
    }

    #[test]
    fn even_loop_has_two_models() {
        let ms = models_of("a :- not b. b :- not a.", 10);
        assert_eq!(ms.len(), 2);
        let mut sets: Vec<Vec<String>> = ms.iter().map(|m| m.render()).collect();
        sets.sort();
        assert_eq!(sets, vec![vec!["a".to_string()], vec!["b".to_string()]]);
    }

    #[test]
    fn free_choice_powerset() {
        let ms = models_of("{ a }. { b }. { c }.", 100);
        assert_eq!(ms.len(), 8);
    }

    #[test]
    fn limit_respected() {
        let ms = models_of("{ a }. { b }. { c }.", 3);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn unsat_enumerates_nothing() {
        let ms = models_of("a. :- a.", 5);
        assert!(ms.is_empty());
    }

    #[test]
    fn triangle_two_coloring_count() {
        // A path of 3 nodes, 2 colors: colorings where adjacent differ:
        // 2 * 1 * 1 = 2.
        let ms = models_of(
            r#"
            node(1). node(2). node(3).
            edge(1,2). edge(2,3).
            col("r"). col("g").
            1 { c(N,C) : col(C) } 1 :- node(N).
            :- edge(A,B), c(A,C), c(B,C).
        "#,
            100,
        );
        assert_eq!(ms.len(), 2);
    }
}
