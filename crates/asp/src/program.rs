//! Logic-program AST: rules, choice heads, constraints, minimize
//! statements, and a builder API used by the concretizer's fact compiler.

use crate::term::{Atom, Term};
use spackle_spec::Sym;
use std::fmt;

/// Comparison operators for builtin literals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// One element of a rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BodyElem {
    /// Positive literal.
    Pos(Atom),
    /// Negative literal (`not atom`).
    Neg(Atom),
    /// Comparison builtin (`X != Y`).
    Cmp(Term, CmpOp, Term),
}

impl BodyElem {
    /// Collect variables (with duplicates) into `out`; `pos_only`
    /// restricts to positive literals (which bind variables).
    pub fn collect_vars(&self, out: &mut Vec<Sym>, pos_only: bool) {
        match self {
            BodyElem::Pos(a) => a.collect_vars(out),
            BodyElem::Neg(a) if !pos_only => a.collect_vars(out),
            BodyElem::Cmp(l, _, r) if !pos_only => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            _ => {}
        }
    }
}

impl fmt::Display for BodyElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyElem::Pos(a) => write!(f, "{a}"),
            BodyElem::Neg(a) => write!(f, "not {a}"),
            BodyElem::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// One element of a choice head: `atom : condition`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChoiceElem {
    /// The choosable atom.
    pub atom: Atom,
    /// Positive-literal / comparison condition after `:` (may be empty).
    pub condition: Vec<BodyElem>,
}

impl fmt::Display for ChoiceElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.atom)?;
        if !self.condition.is_empty() {
            f.write_str(" : ")?;
            for (i, c) in self.condition.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// A rule head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Head {
    /// Integrity constraint: no head (`:- body.`).
    None,
    /// Regular atom head.
    Atom(Atom),
    /// Choice with optional cardinality bounds:
    /// `lower { elems } upper :- body.`
    Choice {
        /// Minimum number of chosen elements (when the body holds).
        lower: Option<u32>,
        /// Maximum number of chosen elements (when the body holds).
        upper: Option<u32>,
        /// The choosable elements.
        elements: Vec<ChoiceElem>,
    },
}

/// A rule: head and body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head.
    pub head: Head,
    /// Body elements (conjunction).
    pub body: Vec<BodyElem>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.head {
            Head::None => {}
            Head::Atom(a) => write!(f, "{a}")?,
            Head::Choice {
                lower,
                upper,
                elements,
            } => {
                if let Some(l) = lower {
                    write!(f, "{l} ")?;
                }
                f.write_str("{ ")?;
                for (i, e) in elements.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(" }")?;
                if let Some(u) = upper {
                    write!(f, " {u}")?;
                }
            }
        }
        if !self.body.is_empty() || matches!(self.head, Head::None) {
            f.write_str(" :- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{b}")?;
            }
        }
        f.write_str(".")
    }
}

/// One `#minimize` element: `weight@priority, terms... : condition`.
///
/// In a model, each *distinct ground tuple* `(weight, priority, terms)`
/// whose condition holds contributes `weight` at level `priority`.
/// Higher priorities are optimized first (Clingo convention).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinimizeElem {
    /// Weight term (must ground to an integer).
    pub weight: Term,
    /// Priority term (must ground to an integer).
    pub priority: Term,
    /// Distinguishing tuple terms.
    pub terms: Vec<Term>,
    /// Condition (positive literals and comparisons).
    pub condition: Vec<BodyElem>,
}

/// A complete logic program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All rules, including facts (rules with empty bodies).
    pub rules: Vec<Rule>,
    /// All minimize elements, across all `#minimize` statements.
    pub minimize: Vec<MinimizeElem>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append every rule and minimize element of `other`.
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
        self.minimize.extend(other.minimize);
    }

    /// Add a ground fact.
    pub fn fact(&mut self, atom: Atom) {
        debug_assert!(atom.is_ground(), "facts must be ground: {atom}");
        self.rules.push(Rule {
            head: Head::Atom(atom),
            body: Vec::new(),
        });
    }

    /// Add a rule.
    pub fn rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Add an integrity constraint with the given body.
    pub fn constraint(&mut self, body: Vec<BodyElem>) {
        self.rules.push(Rule {
            head: Head::None,
            body,
        });
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Remove rules that provably cannot matter, returning the pruned
    /// program and a report. Two analyses run, both at predicate level
    /// (see [`crate::analysis`]):
    ///
    /// 1. **Dead-rule removal** (exactly model-preserving): a rule with a
    ///    positive body literal over an underivable predicate can never
    ///    fire — the grounder would instantiate it zero times — so
    ///    removing it changes nothing. Choice *elements* whose condition
    ///    is underivable are dropped the same way, but the choice rule
    ///    itself is kept (possibly with no elements) so cardinality
    ///    bounds keep constraining exactly as before. `#minimize`
    ///    elements with underivable conditions ground to nothing and are
    ///    dropped; all others are kept untouched so cost vectors keep
    ///    their shape.
    /// 2. **Relevance removal** (projection-preserving): normal rules
    ///    whose head predicate is not backward-reachable from
    ///    `goal_preds` (matched by name, any arity), any constraint, any
    ///    choice, or any `#minimize` condition derive atoms nothing
    ///    reads. By the splitting-set theorem, dropping them preserves
    ///    stable models projected to the remaining predicates, and —
    ///    because minimize conditions are always kept relevant — optimal
    ///    costs exactly. This argument needs the dropped subprogram to
    ///    be *stratified*: a stratified normal program contributes
    ///    exactly one stable extension per surviving-program model,
    ///    while an unstratified one (an irrelevant `p :- not p.`) could
    ///    contribute zero and flip satisfiability. When the candidate
    ///    drop set is unstratified the phase is skipped entirely. Pass
    ///    every head predicate as a goal to disable this phase and keep
    ///    full models identical.
    pub fn prune_unreachable(&self, goal_preds: &[Sym]) -> (Program, PruneReport) {
        use crate::analysis::{derivable_preds, head_preds, pred_of, relevant_preds};

        let derivable = derivable_preds(self);
        let mut report = PruneReport::default();
        let body_alive = |body: &[BodyElem]| {
            body.iter().all(|e| match e {
                BodyElem::Pos(a) => derivable.contains(&pred_of(a)),
                _ => true,
            })
        };

        let mut pruned = Program::new();
        for rule in &self.rules {
            if !body_alive(&rule.body) {
                report.dropped_dead_rules += 1;
                continue;
            }
            match &rule.head {
                Head::Choice {
                    lower,
                    upper,
                    elements,
                } => {
                    let kept: Vec<ChoiceElem> = elements
                        .iter()
                        .filter(|el| body_alive(&el.condition))
                        .cloned()
                        .collect();
                    report.dropped_choice_elements += elements.len() - kept.len();
                    pruned.rules.push(Rule {
                        head: Head::Choice {
                            lower: *lower,
                            upper: *upper,
                            elements: kept,
                        },
                        body: rule.body.clone(),
                    });
                }
                _ => pruned.rules.push(rule.clone()),
            }
        }
        for me in &self.minimize {
            if body_alive(&me.condition) {
                pruned.minimize.push(me.clone());
            } else {
                report.dropped_minimize += 1;
            }
        }

        let relevant = relevant_preds(&pruned, goal_preds);
        let is_irrelevant = |rule: &Rule| {
            matches!(&rule.head, Head::Atom(a) if !relevant.contains(&pred_of(a)))
        };
        // The splitting-set argument requires the dropped "top" to be
        // stratified on its own (negative edges into the kept "bottom"
        // are fine: the bottom model fixes them).
        let top = Program {
            rules: pruned
                .rules
                .iter()
                .filter(|r| is_irrelevant(r))
                .cloned()
                .collect(),
            minimize: Vec::new(),
        };
        let top_stratified = crate::analysis::stratify(&crate::analysis::PredGraph::build(&top))
            .unstratified
            .is_empty();
        if top_stratified && !top.rules.is_empty() {
            let before = std::mem::take(&mut pruned.rules);
            for rule in before {
                if is_irrelevant(&rule) {
                    report.dropped_irrelevant_rules += 1;
                    continue;
                }
                pruned.rules.push(rule);
            }
        }

        let heads_before = head_preds(self);
        let heads_after = head_preds(&pruned);
        report.dead_preds = heads_before.difference(&heads_after).copied().collect();
        (pruned, report)
    }
}

/// What [`Program::prune_unreachable`] removed.
#[derive(Clone, Debug, Default)]
pub struct PruneReport {
    /// Rules removed because a positive body predicate can never be
    /// derived (removal is exactly model-preserving).
    pub dropped_dead_rules: usize,
    /// Normal rules removed because their head predicate cannot reach
    /// the goals, constraints, choices, or costs (model-preserving up to
    /// projection onto the surviving predicates).
    pub dropped_irrelevant_rules: usize,
    /// Choice elements removed because their condition can never hold.
    pub dropped_choice_elements: usize,
    /// `#minimize` elements removed because their condition can never
    /// hold (they ground to nothing, so costs are unchanged).
    pub dropped_minimize: usize,
    /// Predicates that headed at least one rule before pruning and none
    /// after.
    pub dead_preds: std::collections::BTreeSet<(Sym, usize)>,
}

impl PruneReport {
    /// Total rules removed by both phases.
    pub fn dropped_rules(&self) -> usize {
        self.dropped_dead_rules + self.dropped_irrelevant_rules
    }

    /// True when pruning removed nothing at all.
    pub fn is_noop(&self) -> bool {
        self.dropped_rules() == 0 && self.dropped_choice_elements == 0 && self.dropped_minimize == 0
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for m in &self.minimize {
            write!(f, "#minimize {{ {}@{}", m.weight, m.priority)?;
            for t in &m.terms {
                write!(f, ",{t}")?;
            }
            if !m.condition.is_empty() {
                f.write_str(" : ")?;
                for (i, c) in m.condition.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c}")?;
                }
            }
            writeln!(f, " }}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_fact() {
        let mut p = Program::new();
        p.fact(Atom::new("node", vec![Term::str("example")]));
        assert_eq!(p.to_string().trim(), r#"node("example")."#);
    }

    #[test]
    fn display_rule() {
        let r = Rule {
            head: Head::Atom(Atom::new("b", vec![Term::var("X")])),
            body: vec![
                BodyElem::Pos(Atom::new("a", vec![Term::var("X")])),
                BodyElem::Neg(Atom::new("c", vec![Term::var("X")])),
                BodyElem::Cmp(Term::var("X"), CmpOp::Ne, Term::Int(3)),
            ],
        };
        assert_eq!(r.to_string(), "b(X) :- a(X), not c(X), X != 3.");
    }

    #[test]
    fn display_constraint() {
        let r = Rule {
            head: Head::None,
            body: vec![BodyElem::Pos(Atom::new("bad", vec![]))],
        };
        assert_eq!(r.to_string(), " :- bad.");
    }

    #[test]
    fn prune_drops_dead_rules_but_keeps_choice_bounds() {
        let p = crate::parse_program(
            r#"
            a. goal :- a.
            never :- ghost.
            :- phantom, goal.
            1 { pick(X) : missing(X) } 1 :- a.
            #minimize { 1@1 : ghost }.
            "#,
        )
        .unwrap();
        let (pruned, report) = p.prune_unreachable(&[spackle_spec::Sym::intern("goal")]);
        // `never :- ghost.` and `:- phantom, goal.` can never fire.
        assert_eq!(report.dropped_dead_rules, 2);
        // The choice survives (its lower bound still constrains) with its
        // impossible element removed.
        assert_eq!(report.dropped_choice_elements, 1);
        assert!(pruned.rules.iter().any(|r| matches!(
            &r.head,
            Head::Choice { elements, lower: Some(1), .. } if elements.is_empty()
        )));
        assert_eq!(report.dropped_minimize, 1);
        assert!(report.dead_preds.contains(&(spackle_spec::Sym::intern("never"), 0)));
    }

    #[test]
    fn prune_drops_rules_irrelevant_to_goal() {
        let p = crate::parse_program("a. goal :- a. side :- a.").unwrap();
        let (pruned, report) = p.prune_unreachable(&[spackle_spec::Sym::intern("goal")]);
        assert_eq!(report.dropped_irrelevant_rules, 1);
        assert_eq!(pruned.rules.len(), 2);
        // With every head predicate as a goal, nothing is dropped.
        let all: Vec<spackle_spec::Sym> = ["a", "goal", "side"]
            .iter()
            .map(|s| spackle_spec::Sym::intern(s))
            .collect();
        let (_, report) = p.prune_unreachable(&all);
        assert!(report.is_noop());
    }

    #[test]
    fn prune_keeps_unstratified_irrelevant_top() {
        // `p :- not p.` leaves the program without stable models even
        // though nothing reads `p`; dropping it as irrelevant would
        // "fix" an unsatisfiable program. The stratified-top guard must
        // keep it (and, all-or-nothing, the other irrelevant rule too).
        let p = crate::parse_program("a. goal :- a. side :- a. p :- not p.").unwrap();
        let (pruned, report) = p.prune_unreachable(&[spackle_spec::Sym::intern("goal")]);
        assert_eq!(report.dropped_irrelevant_rules, 0);
        assert_eq!(pruned.rules.len(), p.rules.len());
        // Without the poison rule, relevance removal proceeds.
        let q = crate::parse_program("a. goal :- a. side :- a.").unwrap();
        let (_, report) = q.prune_unreachable(&[spackle_spec::Sym::intern("goal")]);
        assert_eq!(report.dropped_irrelevant_rules, 1);
    }

    #[test]
    fn display_choice() {
        let r = Rule {
            head: Head::Choice {
                lower: Some(1),
                upper: Some(1),
                elements: vec![ChoiceElem {
                    atom: Atom::new("version_set", vec![Term::var("V")]),
                    condition: vec![BodyElem::Pos(Atom::new(
                        "version_declared",
                        vec![Term::var("V")],
                    ))],
                }],
            },
            body: vec![BodyElem::Pos(Atom::new("node", vec![Term::var("N")]))],
        };
        assert_eq!(
            r.to_string(),
            "1 { version_set(V) : version_declared(V) } 1 :- node(N)."
        );
    }
}
