//! Logic-program AST: rules, choice heads, constraints, minimize
//! statements, and a builder API used by the concretizer's fact compiler.

use crate::term::{Atom, Term};
use spackle_spec::Sym;
use std::fmt;

/// Comparison operators for builtin literals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// One element of a rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BodyElem {
    /// Positive literal.
    Pos(Atom),
    /// Negative literal (`not atom`).
    Neg(Atom),
    /// Comparison builtin (`X != Y`).
    Cmp(Term, CmpOp, Term),
}

impl BodyElem {
    /// Collect variables (with duplicates) into `out`; `pos_only`
    /// restricts to positive literals (which bind variables).
    pub fn collect_vars(&self, out: &mut Vec<Sym>, pos_only: bool) {
        match self {
            BodyElem::Pos(a) => a.collect_vars(out),
            BodyElem::Neg(a) if !pos_only => a.collect_vars(out),
            BodyElem::Cmp(l, _, r) if !pos_only => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
            _ => {}
        }
    }
}

impl fmt::Display for BodyElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyElem::Pos(a) => write!(f, "{a}"),
            BodyElem::Neg(a) => write!(f, "not {a}"),
            BodyElem::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
        }
    }
}

/// One element of a choice head: `atom : condition`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChoiceElem {
    /// The choosable atom.
    pub atom: Atom,
    /// Positive-literal / comparison condition after `:` (may be empty).
    pub condition: Vec<BodyElem>,
}

impl fmt::Display for ChoiceElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.atom)?;
        if !self.condition.is_empty() {
            f.write_str(" : ")?;
            for (i, c) in self.condition.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// A rule head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Head {
    /// Integrity constraint: no head (`:- body.`).
    None,
    /// Regular atom head.
    Atom(Atom),
    /// Choice with optional cardinality bounds:
    /// `lower { elems } upper :- body.`
    Choice {
        /// Minimum number of chosen elements (when the body holds).
        lower: Option<u32>,
        /// Maximum number of chosen elements (when the body holds).
        upper: Option<u32>,
        /// The choosable elements.
        elements: Vec<ChoiceElem>,
    },
}

/// A rule: head and body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head.
    pub head: Head,
    /// Body elements (conjunction).
    pub body: Vec<BodyElem>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.head {
            Head::None => {}
            Head::Atom(a) => write!(f, "{a}")?,
            Head::Choice {
                lower,
                upper,
                elements,
            } => {
                if let Some(l) = lower {
                    write!(f, "{l} ")?;
                }
                f.write_str("{ ")?;
                for (i, e) in elements.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(" }")?;
                if let Some(u) = upper {
                    write!(f, " {u}")?;
                }
            }
        }
        if !self.body.is_empty() || matches!(self.head, Head::None) {
            f.write_str(" :- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{b}")?;
            }
        }
        f.write_str(".")
    }
}

/// One `#minimize` element: `weight@priority, terms... : condition`.
///
/// In a model, each *distinct ground tuple* `(weight, priority, terms)`
/// whose condition holds contributes `weight` at level `priority`.
/// Higher priorities are optimized first (Clingo convention).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinimizeElem {
    /// Weight term (must ground to an integer).
    pub weight: Term,
    /// Priority term (must ground to an integer).
    pub priority: Term,
    /// Distinguishing tuple terms.
    pub terms: Vec<Term>,
    /// Condition (positive literals and comparisons).
    pub condition: Vec<BodyElem>,
}

/// A complete logic program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All rules, including facts (rules with empty bodies).
    pub rules: Vec<Rule>,
    /// All minimize elements, across all `#minimize` statements.
    pub minimize: Vec<MinimizeElem>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append every rule and minimize element of `other`.
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
        self.minimize.extend(other.minimize);
    }

    /// Add a ground fact.
    pub fn fact(&mut self, atom: Atom) {
        debug_assert!(atom.is_ground(), "facts must be ground: {atom}");
        self.rules.push(Rule {
            head: Head::Atom(atom),
            body: Vec::new(),
        });
    }

    /// Add a rule.
    pub fn rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Add an integrity constraint with the given body.
    pub fn constraint(&mut self, body: Vec<BodyElem>) {
        self.rules.push(Rule {
            head: Head::None,
            body,
        });
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for m in &self.minimize {
            write!(f, "#minimize {{ {}@{}", m.weight, m.priority)?;
            for t in &m.terms {
                write!(f, ",{t}")?;
            }
            if !m.condition.is_empty() {
                f.write_str(" : ")?;
                for (i, c) in m.condition.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c}")?;
                }
            }
            writeln!(f, " }}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_fact() {
        let mut p = Program::new();
        p.fact(Atom::new("node", vec![Term::str("example")]));
        assert_eq!(p.to_string().trim(), r#"node("example")."#);
    }

    #[test]
    fn display_rule() {
        let r = Rule {
            head: Head::Atom(Atom::new("b", vec![Term::var("X")])),
            body: vec![
                BodyElem::Pos(Atom::new("a", vec![Term::var("X")])),
                BodyElem::Neg(Atom::new("c", vec![Term::var("X")])),
                BodyElem::Cmp(Term::var("X"), CmpOp::Ne, Term::Int(3)),
            ],
        };
        assert_eq!(r.to_string(), "b(X) :- a(X), not c(X), X != 3.");
    }

    #[test]
    fn display_constraint() {
        let r = Rule {
            head: Head::None,
            body: vec![BodyElem::Pos(Atom::new("bad", vec![]))],
        };
        assert_eq!(r.to_string(), " :- bad.");
    }

    #[test]
    fn display_choice() {
        let r = Rule {
            head: Head::Choice {
                lower: Some(1),
                upper: Some(1),
                elements: vec![ChoiceElem {
                    atom: Atom::new("version_set", vec![Term::var("V")]),
                    condition: vec![BodyElem::Pos(Atom::new(
                        "version_declared",
                        vec![Term::var("V")],
                    ))],
                }],
            },
            body: vec![BodyElem::Pos(Atom::new("node", vec![Term::var("N")]))],
        };
        assert_eq!(
            r.to_string(),
            "1 { version_set(V) : version_declared(V) } 1 :- node(N)."
        );
    }
}
