//! Answer-set (model) representation and query API.

use crate::ground::GroundProgram;
use crate::term::{AtomId, GroundStore, GroundTerm, TermId};
use rustc_hash::FxHashSet;
use spackle_spec::Sym;
use std::sync::Arc;

/// A stable model: the set of true atoms plus the ground program that
/// produced it (needed to decode atoms and to certificate-check the
/// model), and the achieved cost vector.
///
/// Cloning is cheap relative to a solve — the ground program is shared
/// behind an `Arc` — which is what lets warm caches memoize solved
/// models per search configuration and replay them on identical
/// translated programs.
#[derive(Clone)]
pub struct Model {
    ground: Arc<GroundProgram>,
    true_atoms: FxHashSet<AtomId>,
    /// `(priority, cost)` pairs, highest priority first.
    pub cost: Vec<(i64, i64)>,
}

impl Model {
    pub(crate) fn new(
        ground: Arc<GroundProgram>,
        true_atoms: FxHashSet<AtomId>,
        cost: Vec<(i64, i64)>,
    ) -> Model {
        Model {
            ground,
            true_atoms,
            cost,
        }
    }

    /// The ground program this model was found for. Atom ids in
    /// [`Model::true_atoms`] index into this program's store, so the
    /// model can be validated against the exact grounding that produced
    /// it (see [`crate::certify`]).
    pub fn ground(&self) -> &GroundProgram {
        &self.ground
    }

    /// The underlying term store (for decoding arguments).
    pub fn store(&self) -> &GroundStore {
        &self.ground.store
    }

    /// Is the atom true?
    pub fn contains(&self, a: AtomId) -> bool {
        self.true_atoms.contains(&a)
    }

    /// Iterate over the true atoms, in unspecified order.
    pub fn true_atoms(&self) -> impl Iterator<Item = AtomId> + '_ {
        self.true_atoms.iter().copied()
    }

    /// The set of true atoms.
    pub fn atom_set(&self) -> &FxHashSet<AtomId> {
        &self.true_atoms
    }

    /// Number of true atoms.
    pub fn len(&self) -> usize {
        self.true_atoms.len()
    }

    /// True when no atom holds.
    pub fn is_empty(&self) -> bool {
        self.true_atoms.is_empty()
    }

    /// Iterate the argument tuples of all true atoms with predicate
    /// `pred`, in deterministic (atom-id) order.
    pub fn atoms_of(&self, pred: &str) -> Vec<&[TermId]> {
        let p = Sym::intern(pred);
        let mut ids: Vec<AtomId> = self.true_atoms.iter().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .filter_map(|a| {
                let (ap, args) = self.store().atom_data(a);
                (ap == p).then_some(args)
            })
            .collect()
    }

    /// All true atoms rendered as text, sorted (test/debug helper).
    pub fn render(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .true_atoms
            .iter()
            .map(|&a| self.store().format_atom(a))
            .collect();
        v.sort();
        v
    }

    /// Does a ground atom with this predicate and these exact string
    /// arguments hold? (Convenience for tests.)
    pub fn holds_str(&self, pred: &str, args: &[&str]) -> bool {
        self.render_holds(pred, args)
    }

    fn render_holds(&self, pred: &str, args: &[&str]) -> bool {
        let p = Sym::intern(pred);
        self.true_atoms.iter().any(|&a| {
            let (ap, aargs) = self.store().atom_data(a);
            ap == p
                && aargs.len() == args.len()
                && aargs.iter().zip(args).all(|(&tid, &want)| {
                    matches!(self.store().term_data(tid), GroundTerm::Str(s) if s.as_str() == want)
                })
        })
    }

    // ---- term decoding helpers ----

    /// Decode a term as a quoted string.
    pub fn as_str(&self, t: TermId) -> Option<&'static str> {
        match self.store().term_data(t) {
            GroundTerm::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Decode a term as a symbolic constant.
    pub fn as_sym(&self, t: TermId) -> Option<&'static str> {
        match self.store().term_data(t) {
            GroundTerm::Sym(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Decode a term as an integer.
    pub fn as_int(&self, t: TermId) -> Option<i64> {
        match self.store().term_data(t) {
            GroundTerm::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Decode a compound term as (functor name, argument ids).
    pub fn as_func(&self, t: TermId) -> Option<(&'static str, &[TermId])> {
        match self.store().term_data(t) {
            GroundTerm::Func(name, args) => Some((name.as_str(), args)),
            _ => None,
        }
    }
}
