#![warn(missing_docs)]

//! # spackle-asp
//!
//! A from-scratch, miniature Answer Set Programming (ASP) engine — the
//! substrate standing in for Clingo in Spackle's concretizer (paper §3.3,
//! §5.1). It supports exactly the language fragment the concretizer's
//! logic program needs:
//!
//! * facts and definite rules with negation-as-failure (`not`);
//! * comparison builtins (`=`, `!=`, `<`, `<=`, `>`, `>=`);
//! * choice rules with cardinality bounds (`1 { a(X) : b(X) } 1 :- c.`);
//! * integrity constraints (`:- body.`);
//! * prioritized weighted minimization (`#minimize { W@P,T : cond }.`).
//!
//! ## Pipeline
//!
//! 1. **Parse** ([`parser`]) — `.lp` text into a [`program::Program`].
//! 2. **Ground** ([`ground`]) — semi-naive, index-backed instantiation of
//!    rules over an over-approximated Herbrand base.
//! 3. **Translate** ([`cnf`]) — Clark completion plus sequential-counter
//!    cardinality encodings to CNF.
//! 4. **Preprocess** ([`preprocess`]) — SatELite-style simplification
//!    (unit propagation to fixpoint, pure/failed literals, subsumption +
//!    self-subsuming resolution, bounded variable elimination with model
//!    reconstruction) over the translated CNF, with ASP-visible
//!    variables frozen.
//! 5. **Search** ([`cdcl`]) — a MiniSat-style CDCL SAT solver (two
//!    watched literals with blockers, 1UIP learning, VSIDS, phase
//!    saving, Luby restarts, LBD-scored clause deletion).
//! 6. **Verify** ([`stability`]) — a model-guided Gelfond–Lifschitz
//!    stability check; non-stable models are blocked and search resumes
//!    (CEGAR). Programs whose ground positive-dependency graph is acyclic
//!    — like the concretizer's, where ground recursion follows package
//!    DAGs — never trigger the loop.
//! 7. **Optimize** ([`solve`]) — lexicographic branch-and-bound over
//!    `#minimize` priorities, incrementally reusing learned clauses
//!    across bound tightenings.

pub mod analysis;
pub mod cancel;
pub mod cdcl;
pub mod certify;
pub mod cnf;
pub mod explain;
pub mod ground;
pub mod model;
pub mod parser;
pub mod preprocess;
pub mod program;
pub mod solve;
pub mod stability;
pub mod term;

pub use analysis::{
    derivable_preds, pred_of, relevant_preds, stratify, PredGraph, PredKey, Stratification,
};
pub use cancel::CancelToken;
pub use cdcl::SatConfig;
pub use certify::{certify_model, CertifyError};
pub use cnf::ClauseOrigin;
pub use explain::{CoreMember, ExplainConfig, ExplainOutcome, UnsatCore};
pub use ground::{
    ground_parallel, unsafe_variables, GroundLimits, GroundProgram, SafetyContext, UnsafeVariable,
};
pub use model::Model;
pub use parser::{parse_program, parse_program_spanned};
pub use preprocess::{preprocess, PreprocessConfig, PreprocessStats, Preprocessed};
pub use program::{Program, PruneReport, Rule};
pub use solve::{SolveOutcome, SolveStats, Solver, SolverConfig, TranslatedProgram};
pub use term::{Atom, Term};

use std::fmt;

/// Errors from parsing, grounding, or solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AspError {
    /// Text could not be parsed; offset is a byte position.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A rule is unsafe: a head/negative/comparison variable is not bound
    /// by any positive body literal.
    Unsafe {
        /// Rendering of the offending rule.
        rule: String,
        /// The unbound variable.
        variable: String,
    },
    /// A choice-element condition ranges over a model-dependent
    /// predicate; this engine requires conditions over domain (EDB)
    /// predicates so elements can be expanded at ground time.
    NonDomainCondition {
        /// Rendering of the offending condition atom.
        atom: String,
        /// Rendering of the enclosing rule.
        rule: String,
    },
    /// A negated choice condition could still be derived at solve time,
    /// so the element set cannot be decided while grounding.
    DerivableNegatedCondition {
        /// Rendering of the offending negated atom.
        atom: String,
        /// Rendering of the enclosing rule.
        rule: String,
    },
    /// A `#minimize` weight or priority was negative or not an integer.
    BadWeight(String),
    /// The grounder or solver hit a configured resource limit.
    ResourceLimit(String),
    /// The solver gave up after exhausting its conflict budget — a
    /// bounded "don't know", distinguishable from UNSAT. Carries the
    /// search effort spent so callers can report (and ship over the
    /// wire) how hard the solver tried.
    BudgetExhausted {
        /// CDCL conflicts at the point of giving up.
        conflicts: u64,
        /// CDCL decisions at the point of giving up.
        decisions: u64,
        /// CDCL literal propagations at the point of giving up.
        propagations: u64,
        /// CDCL restarts at the point of giving up.
        restarts: u64,
    },
    /// The solve was cancelled cooperatively; `deadline` is true when a
    /// wall-clock deadline fired rather than an explicit cancel.
    Cancelled {
        /// Whether a wall-clock deadline triggered the cancellation.
        deadline: bool,
    },
    /// An internal invariant failed (a bug).
    Internal(String),
}

impl fmt::Display for AspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AspError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            AspError::Unsafe { rule, variable } => {
                write!(f, "unsafe variable {variable} in rule: {rule}")
            }
            AspError::NonDomainCondition { atom, rule } => write!(
                f,
                "choice condition {atom} is not a domain (certain) atom \
                 in rule: {rule}"
            ),
            AspError::DerivableNegatedCondition { atom, rule } => write!(
                f,
                "negated choice condition {atom} may be derivable at \
                 solve time in rule: {rule}"
            ),
            AspError::BadWeight(m) => write!(f, "invalid #minimize weight/priority: {m}"),
            AspError::ResourceLimit(m) => write!(f, "resource limit: {m}"),
            AspError::BudgetExhausted {
                conflicts,
                decisions,
                propagations,
                restarts,
            } => write!(
                f,
                "conflict budget exhausted after {conflicts} conflicts, \
                 {decisions} decisions, {propagations} propagations, \
                 {restarts} restarts"
            ),
            AspError::Cancelled { deadline } => {
                if *deadline {
                    write!(f, "solve deadline exceeded")
                } else {
                    write!(f, "solve cancelled")
                }
            }
            AspError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for AspError {}

/// Result alias for this crate.
pub type Result<T, E = AspError> = std::result::Result<T, E>;
