//! SatELite-style CNF preprocessing: a standalone simplification pass
//! run between CNF translation and CDCL search.
//!
//! Techniques (each individually toggleable via [`PreprocessConfig`]):
//!
//! * **unit propagation** to fixpoint (always on while enabled — every
//!   other technique assumes a unit-free formula);
//! * **pure-literal elimination** — a variable occurring with only one
//!   polarity is removed together with its clauses;
//! * **failed-literal elimination** — probing a literal by unit
//!   propagation; a conflict entails its negation as a new unit;
//! * **clause subsumption** and **self-subsuming resolution**
//!   (strengthening);
//! * **bounded variable elimination** (BVE) by distribution, accepting
//!   an elimination only when the resolvent set does not grow the
//!   formula beyond a configured margin.
//!
//! Elimination is *model-changing*: pure-literal and BVE steps remove
//! variables whose values are no longer determined by the simplified
//! formula. Every such step pushes an entry onto a **reconstruction
//! stack** ([`Preprocessed::reconstruct`]) so a model of the simplified
//! formula extends to a model of the original one. Variables the caller
//! will mention later — in assumptions or incrementally added clauses —
//! must be declared **frozen**; frozen variables are never eliminated
//! (the ASP pipeline freezes atom, body, and cost variables, leaving
//! only auxiliary encoding variables eliminable).
//!
//! What is *not* model-changing: units, failed literals, subsumption,
//! and strengthening only add entailed facts or drop implied clauses,
//! so the projection of the model set onto the surviving variables is
//! preserved exactly — which is what the ASP layers (stable-model
//! enumeration, lexicographic optimization, certification) rely on.

use crate::cdcl::{Lit, Var};

/// Which preprocessing techniques to run, plus their resource bounds.
#[derive(Clone, Debug)]
pub struct PreprocessConfig {
    /// Master switch. When `false`, [`preprocess`] returns the input
    /// unchanged (and [`crate::solve::Solver`] skips the pass wholesale).
    pub enabled: bool,
    /// Eliminate variables that occur with a single polarity.
    pub pure_literals: bool,
    /// Probe literals by unit propagation; conflicts entail units.
    pub failed_literals: bool,
    /// Remove clauses subsumed by a (strictly smaller or equal) clause.
    pub subsumption: bool,
    /// Strengthen clauses by self-subsuming resolution.
    pub self_subsumption: bool,
    /// Bounded variable elimination by distribution.
    pub var_elim: bool,
    /// BVE accepts an elimination only when
    /// `resolvents <= removed_clauses + var_elim_growth`.
    pub var_elim_growth: usize,
    /// BVE skips variables with more than this many occurrences of
    /// either polarity (quadratic resolvent blow-up guard).
    pub var_elim_max_occ: usize,
    /// BVE rejects resolvents longer than this.
    pub var_elim_max_len: usize,
    /// Total clause-visit budget for failed-literal probing; 0 disables
    /// probing regardless of `failed_literals`.
    pub probe_budget: u64,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            enabled: true,
            pure_literals: true,
            failed_literals: true,
            subsumption: true,
            self_subsumption: true,
            var_elim: true,
            var_elim_growth: 0,
            var_elim_max_occ: 12,
            var_elim_max_len: 16,
            probe_budget: 2_000_000,
        }
    }
}

impl PreprocessConfig {
    /// Everything off — the seed engine's behavior.
    pub fn disabled() -> Self {
        PreprocessConfig {
            enabled: false,
            pure_literals: false,
            failed_literals: false,
            subsumption: false,
            self_subsumption: false,
            var_elim: false,
            ..Default::default()
        }
    }
}

/// Counters for one preprocessing run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Entailed units fixed (initial units + propagation + failed lits).
    pub fixed_literals: u64,
    /// Units contributed specifically by failed-literal probing.
    pub failed_literals: u64,
    /// Variables removed by pure-literal elimination.
    pub pure_literals: u64,
    /// Clauses removed by subsumption.
    pub subsumed_clauses: u64,
    /// Clauses shortened by self-subsuming resolution.
    pub strengthened_clauses: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Resolvent clauses added by BVE.
    pub resolvents_added: u64,
    /// Clauses in the input (after intake normalization).
    pub clauses_in: u64,
    /// Clauses in the simplified output.
    pub clauses_out: u64,
    /// Technique sweeps until fixpoint.
    pub rounds: u64,
}

impl PreprocessStats {
    /// Did this run change nothing? (The idempotence criterion: a second
    /// pass over preprocessed output must be a no-op.)
    pub fn is_noop(&self) -> bool {
        self.fixed_literals == 0
            && self.pure_literals == 0
            && self.subsumed_clauses == 0
            && self.strengthened_clauses == 0
            && self.eliminated_vars == 0
    }
}

/// One entry of the model-reconstruction stack, in chronological order.
#[derive(Clone, Debug)]
pub enum TraceEntry {
    /// An entailed unit: every model sets this literal true.
    Fixed(Lit),
    /// A variable removed by pure-literal elimination or BVE, with the
    /// original clauses that mentioned it. Reconstruction picks the
    /// value satisfying all of them.
    Eliminated {
        /// The removed variable.
        var: Var,
        /// Snapshot of the clauses containing `var` at removal time.
        clauses: Vec<Vec<Lit>>,
    },
}

/// The result of [`preprocess`]: the simplified formula, statistics,
/// and the reconstruction stack.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// Variable count (unchanged: variables are never renumbered).
    pub num_vars: usize,
    /// The simplified clauses. Unit-free (units live in the trace) and
    /// free of fixed or eliminated variables.
    pub clauses: Vec<Vec<Lit>>,
    /// What the pass did.
    pub stats: PreprocessStats,
    /// The pass derived the empty clause: the input is unsatisfiable
    /// (`clauses` and the trace are meaningless in that case).
    pub unsat: bool,
    trace: Vec<TraceEntry>,
}

impl Preprocessed {
    /// Extend `model` (indexed by variable, `true`/`false` per var, at
    /// least `num_vars` long) from a model of the simplified formula to
    /// a model of the *original* formula: replays the reconstruction
    /// stack newest-first, setting fixed variables to their entailed
    /// values and eliminated variables to whichever value satisfies
    /// their saved clauses.
    pub fn reconstruct(&self, model: &mut [bool]) {
        debug_assert!(model.len() >= self.num_vars);
        for entry in self.trace.iter().rev() {
            match entry {
                TraceEntry::Fixed(l) => model[l.var() as usize] = !l.is_neg(),
                TraceEntry::Eliminated { var, clauses } => {
                    let v = *var as usize;
                    model[v] = false;
                    let sat_under = |m: &[bool], c: &[Lit]| {
                        c.iter().any(|l| m[l.var() as usize] != l.is_neg())
                    };
                    if !clauses.iter().all(|c| sat_under(model, c)) {
                        model[v] = true;
                        debug_assert!(
                            clauses.iter().all(|c| sat_under(model, c)),
                            "elimination invariant violated for var {var}"
                        );
                    }
                }
            }
        }
    }

    /// The reconstruction stack, oldest entry first.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Consume, returning the reconstruction stack (for embedding into a
    /// solver that will do its own reconstruction).
    pub fn into_trace(self) -> Vec<TraceEntry> {
        self.trace
    }
}

/// Working state of one preprocessing run.
struct Pre<'a> {
    cfg: &'a PreprocessConfig,
    /// Per-variable freeze flag (never eliminate).
    frozen: Vec<bool>,
    /// Clause arena; `None` = removed. Live clauses are sorted, deduped,
    /// tautology-free, and contain no assigned variables.
    clauses: Vec<Option<Vec<Lit>>>,
    /// Occurrence lists per literal (`Lit.0`-indexed). May hold stale
    /// clause indices; every use re-validates membership.
    occ: Vec<Vec<u32>>,
    /// Exact live occurrence count per literal.
    n_occ: Vec<u32>,
    /// Permanent assignment per variable (entailed or WLOG-chosen).
    assign: Vec<Option<bool>>,
    /// Variables removed by elimination.
    gone: Vec<bool>,
    /// Pending entailed units.
    units: Vec<Lit>,
    trace: Vec<TraceEntry>,
    stats: PreprocessStats,
    unsat: bool,
    probe_budget: u64,
}

impl<'a> Pre<'a> {
    fn new(num_vars: usize, cfg: &'a PreprocessConfig, frozen: &[bool]) -> Pre<'a> {
        let mut fr = vec![false; num_vars];
        fr[..frozen.len().min(num_vars)].copy_from_slice(&frozen[..frozen.len().min(num_vars)]);
        Pre {
            cfg,
            frozen: fr,
            clauses: Vec::new(),
            occ: vec![Vec::new(); num_vars * 2],
            n_occ: vec![0; num_vars * 2],
            assign: vec![None; num_vars],
            gone: vec![false; num_vars],
            units: Vec::new(),
            trace: Vec::new(),
            stats: PreprocessStats::default(),
            unsat: false,
            probe_budget: cfg.probe_budget,
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|v| v != l.is_neg())
    }

    /// Intern one input clause: sort, dedupe, drop tautologies, reduce
    /// against the current assignment.
    fn intake(&mut self, lits: &[Lit]) {
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x ∨ ¬x
            }
        }
        if c.iter().any(|&l| self.value(l) == Some(true)) {
            return;
        }
        c.retain(|&l| self.value(l).is_none());
        match c.len() {
            0 => self.unsat = true,
            1 => self.push_unit(c[0]),
            _ => {
                self.add_clause(c);
            }
        }
    }

    /// Record an entailed unit (deduplicated against the assignment).
    fn push_unit(&mut self, l: Lit) {
        match self.value(l) {
            Some(true) => {}
            Some(false) => self.unsat = true,
            None => {
                self.assign[l.var() as usize] = Some(!l.is_neg());
                self.trace.push(TraceEntry::Fixed(l));
                self.stats.fixed_literals += 1;
                self.units.push(l);
            }
        }
    }

    /// Attach a live (already normalized, length ≥ 2) clause.
    fn add_clause(&mut self, c: Vec<Lit>) -> u32 {
        let idx = self.clauses.len() as u32;
        for &l in &c {
            self.occ[l.0 as usize].push(idx);
            self.n_occ[l.0 as usize] += 1;
        }
        self.clauses.push(Some(c));
        idx
    }

    fn remove_clause(&mut self, ci: u32) {
        if let Some(c) = self.clauses[ci as usize].take() {
            for &l in &c {
                self.n_occ[l.0 as usize] -= 1;
            }
        }
    }

    /// Remove literal `l` from clause `ci` (it is false, or resolved
    /// away by strengthening). May produce a unit or the empty clause.
    fn shrink_clause(&mut self, ci: u32, l: Lit) {
        let Some(c) = self.clauses[ci as usize].as_mut() else {
            return;
        };
        let Some(pos) = c.iter().position(|&x| x == l) else {
            return;
        };
        c.remove(pos);
        self.n_occ[l.0 as usize] -= 1;
        match self.clauses[ci as usize].as_ref().map(|c| c.len()) {
            Some(0) => {
                self.unsat = true;
            }
            Some(1) => {
                let u = self.clauses[ci as usize].as_ref().expect("live")[0];
                self.remove_clause(ci);
                self.push_unit(u);
            }
            _ => {}
        }
    }

    /// Unit propagation to fixpoint over the occurrence lists.
    fn propagate(&mut self) {
        while let Some(l) = self.units.pop() {
            if self.unsat {
                return;
            }
            // Clauses satisfied by l disappear; clauses containing ¬l
            // shrink.
            for ci in std::mem::take(&mut self.occ[l.0 as usize]) {
                if self.contains(ci, l) {
                    self.remove_clause(ci);
                }
            }
            let neg = l.negate();
            for ci in std::mem::take(&mut self.occ[neg.0 as usize]) {
                if self.contains(ci, neg) {
                    self.shrink_clause(ci, neg);
                    if self.unsat {
                        return;
                    }
                }
            }
        }
    }

    fn contains(&self, ci: u32, l: Lit) -> bool {
        self.clauses[ci as usize]
            .as_ref()
            .is_some_and(|c| c.binary_search(&l).is_ok())
    }

    /// 64-bit variable signature for subsumption prefiltering.
    fn sig(c: &[Lit]) -> u64 {
        c.iter().fold(0u64, |s, l| s | 1u64 << (l.var() % 64))
    }

    /// If `sub` subsumes `target` *modulo one flipped literal*, return
    /// that literal of `target` (self-subsuming resolution removes it).
    /// `None` when not even that holds; `Some(None)` for plain
    /// subsumption.
    #[allow(clippy::option_option)]
    fn subsumes(sub: &[Lit], target: &[Lit]) -> Option<Option<Lit>> {
        if sub.len() > target.len() {
            return None;
        }
        let mut flipped: Option<Lit> = None;
        let mut j = 0;
        for &l in sub {
            let want = [l, l.negate()];
            loop {
                if j == target.len() {
                    return None;
                }
                let t = target[j];
                j += 1;
                if t == want[0] {
                    break;
                }
                if t == want[1] {
                    if flipped.is_some() {
                        return None;
                    }
                    flipped = Some(t);
                    break;
                }
                if t > want[0] && t > want[1] {
                    return None;
                }
            }
        }
        Some(flipped)
    }

    /// One subsumption + strengthening sweep. Returns whether anything
    /// changed.
    fn subsumption_sweep(&mut self) -> bool {
        let mut changed = false;
        let mut ci = 0u32;
        while (ci as usize) < self.clauses.len() {
            if self.unsat {
                return changed;
            }
            let Some(c) = self.clauses[ci as usize].clone() else {
                ci += 1;
                continue;
            };
            let csig = Self::sig(&c);
            // Scan candidates through the occurrence lists of the
            // rarest literal (both polarities, to catch strengthening).
            let pivot = c
                .iter()
                .copied()
                .min_by_key(|l| self.n_occ[l.0 as usize] + self.n_occ[l.negate().0 as usize])
                .expect("non-empty clause");
            for side in [pivot, pivot.negate()] {
                for di in self.occ[side.0 as usize].clone() {
                    if di == ci || self.unsat {
                        continue;
                    }
                    let Some(d) = self.clauses[di as usize].as_ref() else {
                        continue;
                    };
                    if !self.contains(di, side) || (csig & !Self::sig(d)) != 0 {
                        continue;
                    }
                    match Self::subsumes(&c, d) {
                        Some(None) if self.cfg.subsumption => {
                            self.remove_clause(di);
                            self.stats.subsumed_clauses += 1;
                            changed = true;
                        }
                        Some(Some(flipped)) if self.cfg.self_subsumption => {
                            self.shrink_clause(di, flipped);
                            self.stats.strengthened_clauses += 1;
                            changed = true;
                        }
                        _ => {}
                    }
                }
            }
            ci += 1;
        }
        if changed {
            self.propagate();
        }
        changed
    }

    /// Probe `l`: temporarily assume it and unit-propagate. Returns
    /// `true` when propagation derives a conflict (so ¬l is entailed).
    fn probe(&mut self, l: Lit) -> bool {
        let mut temp: Vec<Option<bool>> = self.assign.clone();
        let mut queue = vec![l];
        let mut conflict = false;
        'outer: while let Some(p) = queue.pop() {
            match temp[p.var() as usize] {
                Some(v) if v != p.is_neg() => continue,
                Some(_) => {
                    conflict = true;
                    break;
                }
                None => temp[p.var() as usize] = Some(!p.is_neg()),
            }
            let neg = p.negate();
            for &ci in &self.occ[neg.0 as usize] {
                if self.probe_budget == 0 {
                    break 'outer;
                }
                self.probe_budget -= 1;
                let Some(c) = self.clauses[ci as usize].as_ref() else {
                    continue;
                };
                if c.binary_search(&neg).is_err() {
                    continue;
                }
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &x in c {
                    match temp[x.var() as usize] {
                        None => {
                            n_unassigned += 1;
                            unassigned = Some(x);
                        }
                        Some(v) if v != x.is_neg() => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => {
                        conflict = true;
                        break 'outer;
                    }
                    1 => queue.push(unassigned.expect("counted")),
                    _ => {}
                }
            }
        }
        conflict
    }

    /// One failed-literal sweep over literals that occur in binary
    /// clauses (the candidates with propagation reach). Returns whether
    /// any unit was learned.
    fn failed_literal_sweep(&mut self) -> bool {
        let mut candidates: Vec<Lit> = Vec::new();
        for c in self.clauses.iter().flatten() {
            if c.len() == 2 {
                // A false watch on either literal propagates the other:
                // probing their negations has reach.
                candidates.push(c[0].negate());
                candidates.push(c[1].negate());
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut changed = false;
        for l in candidates {
            if self.unsat || self.probe_budget == 0 {
                break;
            }
            if self.assign[l.var() as usize].is_some() || self.gone[l.var() as usize] {
                continue;
            }
            if self.probe(l) {
                self.stats.failed_literals += 1;
                self.push_unit(l.negate());
                self.propagate();
                changed = true;
            }
        }
        changed
    }

    /// Live clause indices containing literal `l` (validated).
    fn live_occ(&self, l: Lit) -> Vec<u32> {
        self.occ[l.0 as usize]
            .iter()
            .copied()
            .filter(|&ci| self.contains(ci, l))
            .collect()
    }

    /// Resolve `a` and `b` on variable `v`. `None` = tautology.
    fn resolve(a: &[Lit], b: &[Lit], v: Var) -> Option<Vec<Lit>> {
        let mut r: Vec<Lit> = a
            .iter()
            .chain(b.iter())
            .copied()
            .filter(|l| l.var() != v)
            .collect();
        r.sort_unstable();
        r.dedup();
        for w in r.windows(2) {
            if w[0].var() == w[1].var() {
                return None;
            }
        }
        Some(r)
    }

    /// One pure-literal + bounded-variable-elimination sweep over all
    /// variables. Returns whether any variable was eliminated.
    fn elimination_sweep(&mut self) -> bool {
        let mut changed = false;
        for v in 0..self.assign.len() as Var {
            if self.unsat {
                return changed;
            }
            let vi = v as usize;
            if self.frozen[vi] || self.gone[vi] || self.assign[vi].is_some() {
                continue;
            }
            let pos = self.live_occ(Lit::pos(v));
            let neg = self.live_occ(Lit::neg(v));
            if pos.is_empty() && neg.is_empty() {
                continue; // the variable is simply absent
            }
            let pure = pos.is_empty() || neg.is_empty();
            if pure {
                if !self.cfg.pure_literals {
                    continue;
                }
            } else {
                if !self.cfg.var_elim {
                    continue;
                }
                if pos.len() > self.cfg.var_elim_max_occ || neg.len() > self.cfg.var_elim_max_occ {
                    continue;
                }
            }

            // Compute the resolvent set (empty for a pure variable).
            let budget = pos.len() + neg.len() + self.cfg.var_elim_growth;
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut too_many = false;
            'res: for &pi in &pos {
                let a = self.clauses[pi as usize].as_ref().expect("live").clone();
                for &ni in &neg {
                    let b = self.clauses[ni as usize].as_ref().expect("live");
                    if let Some(r) = Self::resolve(&a, b, v) {
                        if r.len() > self.cfg.var_elim_max_len {
                            too_many = true;
                            break 'res;
                        }
                        resolvents.push(r);
                        if resolvents.len() > budget {
                            too_many = true;
                            break 'res;
                        }
                    }
                }
            }
            if too_many {
                continue;
            }

            // Commit: snapshot the variable's clauses, remove them, add
            // the resolvents.
            let mut snapshot: Vec<Vec<Lit>> = Vec::with_capacity(pos.len() + neg.len());
            for &ci in pos.iter().chain(neg.iter()) {
                snapshot.push(self.clauses[ci as usize].as_ref().expect("live").clone());
                self.remove_clause(ci);
            }
            self.gone[vi] = true;
            self.trace.push(TraceEntry::Eliminated {
                var: v,
                clauses: snapshot,
            });
            if pure {
                self.stats.pure_literals += 1;
            } else {
                self.stats.eliminated_vars += 1;
            }
            for r in resolvents {
                self.stats.resolvents_added += 1;
                match r.len() {
                    0 => self.unsat = true,
                    1 => self.push_unit(r[0]),
                    _ => {
                        self.add_clause(r);
                    }
                }
            }
            self.propagate();
            changed = true;
        }
        changed
    }

    fn run(&mut self) {
        self.propagate();
        while !self.unsat {
            self.stats.rounds += 1;
            let mut changed = false;
            if self.cfg.subsumption || self.cfg.self_subsumption {
                changed |= self.subsumption_sweep();
            }
            if self.cfg.failed_literals && self.probe_budget > 0 {
                changed |= self.failed_literal_sweep();
            }
            if self.cfg.pure_literals || self.cfg.var_elim {
                changed |= self.elimination_sweep();
            }
            if !changed {
                break;
            }
        }
    }
}

/// Run the preprocessing pipeline over `clauses` (over `num_vars`
/// variables; every literal must reference a variable below that).
/// `frozen` flags variables that must survive untouched by value-
/// changing techniques (shorter-than-`num_vars` slices are padded with
/// `false`).
pub fn preprocess(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    frozen: &[bool],
    config: &PreprocessConfig,
) -> Preprocessed {
    let mut pre = Pre::new(num_vars, config, frozen);
    if config.enabled {
        for c in clauses {
            debug_assert!(
                c.iter().all(|l| (l.var() as usize) < num_vars),
                "literal references unknown variable"
            );
            pre.intake(c);
            if pre.unsat {
                break;
            }
        }
        pre.stats.clauses_in = pre.clauses.len() as u64 + pre.stats.fixed_literals;
        if !pre.unsat {
            pre.run();
        }
    } else {
        pre.stats.clauses_in = clauses.len() as u64;
    }

    if !config.enabled {
        return Preprocessed {
            num_vars,
            clauses: clauses.to_vec(),
            stats: pre.stats,
            unsat: false,
            trace: Vec::new(),
        };
    }

    let out: Vec<Vec<Lit>> = pre.clauses.iter().flatten().cloned().collect();
    pre.stats.clauses_out = out.len() as u64;
    Preprocessed {
        num_vars,
        clauses: out,
        stats: pre.stats,
        unsat: pre.unsat,
        trace: std::mem::take(&mut pre.trace),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: Var) -> Lit {
        Lit::pos(v)
    }
    fn n(v: Var) -> Lit {
        Lit::neg(v)
    }

    fn run(num_vars: usize, clauses: &[Vec<Lit>]) -> Preprocessed {
        preprocess(num_vars, clauses, &[], &PreprocessConfig::default())
    }

    #[test]
    fn unit_chain_fixes_everything() {
        // a; ¬a ∨ b; ¬b ∨ c — pure units after propagation.
        let pre = run(3, &[vec![p(0)], vec![n(0), p(1)], vec![n(1), p(2)]]);
        assert!(!pre.unsat);
        assert!(pre.clauses.is_empty());
        assert_eq!(pre.stats.fixed_literals, 3);
        let mut model = vec![false; 3];
        pre.reconstruct(&mut model);
        assert_eq!(model, vec![true, true, true]);
    }

    #[test]
    fn up_conflict_is_unsat() {
        let pre = run(2, &[vec![p(0)], vec![n(0), p(1)], vec![n(1)]]);
        assert!(pre.unsat);
    }

    #[test]
    fn pure_literal_removed_and_reconstructed() {
        // x appears only positively; y only negatively.
        let pre = run(3, &[vec![p(0), p(2)], vec![p(0), n(1)], vec![n(1), n(2), p(0)]]);
        assert!(!pre.unsat);
        // Everything collapses: x pure positive satisfies all clauses.
        assert!(pre.clauses.is_empty());
        let mut model = vec![false; 3];
        pre.reconstruct(&mut model);
        assert!(model[0], "pure-positive variable reconstructs true");
        // Original clauses all satisfied.
        for c in [vec![p(0), p(2)], vec![p(0), n(1)], vec![n(1), n(2), p(0)]] {
            assert!(c.iter().any(|l| model[l.var() as usize] != l.is_neg()));
        }
    }

    #[test]
    fn frozen_variables_survive() {
        let frozen = vec![true, true, true];
        let pre = preprocess(
            3,
            &[vec![p(0), p(1)], vec![p(0), p(2)]],
            &frozen,
            &PreprocessConfig::default(),
        );
        assert_eq!(pre.stats.pure_literals, 0);
        assert_eq!(pre.stats.eliminated_vars, 0);
        assert_eq!(pre.clauses.len(), 2);
    }

    #[test]
    fn subsumption_drops_superset() {
        let frozen = vec![true; 3];
        let pre = preprocess(
            3,
            &[vec![p(0), p(1)], vec![p(0), p(1), p(2)]],
            &frozen,
            &PreprocessConfig::default(),
        );
        assert_eq!(pre.stats.subsumed_clauses, 1);
        assert_eq!(pre.clauses, vec![vec![p(0), p(1)]]);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (a ∨ ¬b ∨ c) → (a ∨ c); then (a ∨ c) stays.
        let frozen = vec![true; 3];
        let pre = preprocess(
            3,
            &[vec![p(0), p(1)], vec![p(0), n(1), p(2)]],
            &frozen,
            &PreprocessConfig::default(),
        );
        assert_eq!(pre.stats.strengthened_clauses, 1);
        assert!(pre.clauses.contains(&vec![p(0), p(2)]));
    }

    #[test]
    fn failed_literal_finds_entailed_unit() {
        // ¬a → b (a∨b), ¬a → ¬b (a∨¬b): probing ¬a conflicts, so a.
        // Freeze to keep elimination from solving it first.
        let frozen = vec![true; 2];
        let cfg = PreprocessConfig {
            subsumption: false,
            self_subsumption: false,
            ..Default::default()
        };
        let pre = preprocess(2, &[vec![p(0), p(1)], vec![p(0), n(1)]], &frozen, &cfg);
        assert!(!pre.unsat);
        assert!(pre.stats.failed_literals >= 1, "stats: {:?}", pre.stats);
        let mut model = vec![false; 2];
        pre.reconstruct(&mut model);
        assert!(model[0]);
    }

    #[test]
    fn bve_eliminates_and_reconstructs() {
        // v = 1 is definitional-ish: (¬v ∨ a), (v ∨ b) over frozen a,b.
        // Eliminating v produces resolvent (a ∨ b).
        let frozen = vec![true, true, false];
        let orig = vec![vec![n(2), p(0)], vec![p(2), p(1)]];
        let pre = preprocess(3, &orig, &frozen, &PreprocessConfig::default());
        assert_eq!(pre.stats.eliminated_vars, 1);
        assert_eq!(pre.clauses, vec![vec![p(0), p(1)]]);
        // A model of the simplified formula: a=true, b=false.
        let mut model = vec![true, false, false];
        pre.reconstruct(&mut model);
        for c in &orig {
            assert!(
                c.iter().any(|l| model[l.var() as usize] != l.is_neg()),
                "reconstructed model violates {c:?}"
            );
        }
    }

    #[test]
    fn tautologies_vanish_at_intake() {
        let pre = run(2, &[vec![p(0), n(0)], vec![p(1), n(1), p(0)]]);
        assert!(!pre.unsat);
        assert!(pre.clauses.is_empty());
    }

    #[test]
    fn disabled_config_is_identity() {
        let clauses = vec![vec![p(0), p(1)], vec![p(0)]];
        let pre = preprocess(2, &clauses, &[], &PreprocessConfig::disabled());
        assert!(!pre.unsat);
        assert_eq!(pre.clauses, clauses);
        assert!(pre.stats.is_noop());
        assert!(pre.trace().is_empty());
    }

    #[test]
    fn idempotent_on_small_formulas() {
        let clauses = vec![
            vec![p(0), p(1), p(2)],
            vec![n(0), p(3)],
            vec![n(3), p(4), n(1)],
            vec![p(2), n(4)],
            vec![p(5)],
            vec![n(5), p(1), p(3)],
        ];
        let first = run(6, &clauses);
        assert!(!first.unsat);
        let second = run(6, &first.clauses);
        assert!(
            second.stats.is_noop(),
            "second pass must be a no-op: {:?}",
            second.stats
        );
        assert_eq!(second.clauses, first.clauses);
    }
}
