//! Unsat-core extraction: when a program has no stable model, compute a
//! small set of ground rules/choices/constraints that is already
//! unsatisfiable on its own — the raw material for source-level
//! "why can't this concretize?" diagnostics.
//!
//! ## Method
//!
//! The ground program is re-translated with per-clause provenance
//! ([`translate_collected`]). Every *semantic* clause group — the
//! implication clauses of one ground rule, the bound assertions of one
//! choice instance, one integrity constraint, one atom's completion
//! clause — is guarded by a fresh **selector** variable `s_g`
//! (`s_g → clause`); definitional circuitry (body-literal definitions,
//! sequential counters, the constant-true unit) stays hard, since it
//! only introduces fresh literals and can never cause unsatisfiability
//! by itself. Solving under the assumption that every selector is true
//! is then equivalent to solving the original formula, and when the
//! answer is UNSAT, MiniSat-style final-conflict analysis
//! ([`Sat::final_core`]) yields the subset of selectors — i.e. of
//! semantic groups — that participated in the conflict.
//!
//! That initial core is then shrunk by **deletion-based minimization**:
//! candidates are dropped one at a time (in canonical order) and the
//! remainder re-solved; an UNSAT probe both discards the candidate and
//! refines the core to the probe's own final conflict, while a SAT
//! probe proves the candidate necessary (a property preserved under
//! further shrinking, so verified members are never re-probed). Probes
//! respect a conflict budget and the [`ExplainConfig::cancel`] token, so
//! a deadline yields a *partial* core (`minimal = false`) rather than a
//! hang.
//!
//! Stable-model semantics is preserved on both sides: satisfiable
//! answers run the same stability CEGAR loop as the solving path
//! (discovered loop nogoods are added as hard clauses — they
//! over-approximate external supports, so they are sound for every
//! selector subset), and preprocessing runs with selectors frozen, so
//! cores survive subsumption/variable-elimination rewrites via the
//! usual model-reconstruction machinery.
//!
//! Determinism: the extraction always runs under one fixed internal
//! engine configuration, so the reported core depends only on the
//! ground program — not on the caller's [`SolverConfig`] toggles.

use crate::cancel::CancelToken;
use crate::cdcl::{Lit, Sat, SatConfig, SatResult, Var};
use crate::cnf::{translate_collected, ClauseOrigin};
use crate::ground::GroundProgram;
use crate::preprocess::PreprocessConfig;
use crate::solve::{frozen_vars, SolveStats, Solver};
use crate::stability::{check_stability, Stability};
use crate::term::AtomId;
use crate::{AspError, Result};
use rustc_hash::{FxHashMap, FxHashSet};
use std::time::Instant;

/// Knobs for core extraction. Defaults minimize with a generous probe
/// budget and no cancellation.
#[derive(Clone, Debug)]
pub struct ExplainConfig {
    /// Run deletion-based minimization on the initial core. When false
    /// the (typically larger) final-conflict core is returned directly.
    pub minimize: bool,
    /// Maximum deletion probes; hitting the cap returns the current
    /// core with `minimal = false`.
    pub max_probes: usize,
    /// CDCL conflict budget per deletion probe. A probe that exhausts
    /// it keeps its candidate (conservative) and clears `minimal`.
    pub probe_conflict_budget: u64,
    /// Cooperative cancellation (deadline): checked between probes and
    /// polled inside every SAT call. Firing mid-minimization yields a
    /// partial core; firing before the first UNSAT answer is an error.
    pub cancel: CancelToken,
    /// Maximum stability-CEGAR iterations per SAT answer.
    pub max_stability_loops: usize,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig {
            minimize: true,
            max_probes: 4096,
            probe_conflict_budget: 1 << 20,
            cancel: CancelToken::none(),
            max_stability_loops: 10_000,
        }
    }
}

/// One member of an unsat core: a semantic clause group of the ground
/// program, with enough provenance to map it back to the source rule.
#[derive(Clone, Debug)]
pub struct CoreMember {
    /// Which ground construct this group encodes.
    pub origin: ClauseOrigin,
    /// Index of the source [`Program`](crate::program::Program) rule
    /// that emitted the construct (via [`GroundProgram::rule_src`] and
    /// friends); `None` for completion groups, which aggregate every
    /// rule with the same head.
    pub src_rule: Option<u32>,
    /// Human-readable rendering of the ground construct.
    pub text: String,
}

/// A clause-level unsat core.
#[derive(Clone, Debug, Default)]
pub struct UnsatCore {
    /// Core members in canonical (rule, choice, constraint, completion)
    /// order.
    pub members: Vec<CoreMember>,
    /// True when deletion minimization ran to completion, i.e. every
    /// member is proven necessary: dropping any single one makes the
    /// remainder satisfiable. False after a probe budget/deadline cut
    /// minimization short (the core is still unsatisfiable, just not
    /// necessarily minimal).
    pub minimal: bool,
}

/// Outcome of [`Solver::explain_ground`].
#[derive(Debug)]
pub enum ExplainOutcome {
    /// The program has a stable model — nothing to explain.
    Satisfiable,
    /// No stable model: here is a core.
    Unsat(UnsatCore),
}

/// The fixed internal engine configuration for core extraction —
/// independent of the caller's [`SolverConfig`](crate::SolverConfig) so
/// cores are reproducible across engine toggles.
fn canonical_sat_config() -> SatConfig {
    SatConfig::default()
}

struct SelectorMap {
    /// Selector literal per soft origin group, in first-encounter
    /// (emission) order. Selector variables are allocated contiguously
    /// after the translation's variables, starting at `base`, so
    /// `var - base` recovers a selector's index.
    selectors: Vec<(Lit, ClauseOrigin)>,
    by_origin: FxHashMap<ClauseOrigin, usize>,
    base: Var,
}

impl SelectorMap {
    fn index_of(&self, l: Lit) -> Option<usize> {
        let v = l.var();
        if v >= self.base && ((v - self.base) as usize) < self.selectors.len() {
            Some((v - self.base) as usize)
        } else {
            None
        }
    }
}

impl Solver {
    /// Extract a clause-level unsat core from a ground program, or
    /// report that it is satisfiable. See the module docs for the
    /// method; `stats` carries core sizes, probe counts, and wall time
    /// in the `explain_*` fields.
    pub fn explain_ground(
        &self,
        gp: &GroundProgram,
        cfg: &ExplainConfig,
    ) -> Result<(ExplainOutcome, SolveStats)> {
        let t0 = Instant::now();
        let mut stats = SolveStats {
            ground_atoms: gp.possible.len(),
            ground_rules: gp.rules.len(),
            ground_choices: gp.choices.len(),
            ground_constraints: gp.constraints.len(),
            ..Default::default()
        };

        // Re-translate with provenance. The solving path's translation
        // is not reused: selectors must be interleaved with the clause
        // stream before preprocessing sees it.
        let (cnf, tr) = translate_collected(gp);
        let mut sat = Sat::new();
        sat.set_search_config(canonical_sat_config());
        sat.set_cancel(cfg.cancel.clone());
        for _ in 0..cnf.num_vars {
            sat.new_var();
        }

        let mut sel = SelectorMap {
            selectors: Vec::new(),
            by_origin: FxHashMap::default(),
            base: cnf.num_vars as Var,
        };
        let mut guarded: Vec<Lit> = Vec::new();
        for (clause, origin) in &cnf.clauses {
            if !origin.is_soft() {
                sat.add_clause(clause);
                continue;
            }
            let idx = *sel.by_origin.entry(*origin).or_insert_with(|| {
                let s = Lit::pos(sat.new_var());
                sel.selectors.push((s, *origin));
                sel.selectors.len() - 1
            });
            let s = sel.selectors[idx].0;
            guarded.clear();
            guarded.push(s.negate());
            guarded.extend_from_slice(clause);
            sat.add_clause(&guarded);
        }
        stats.sat_vars = sat.num_vars();

        // Preprocess with selectors frozen alongside the ASP-visible
        // variables, so every group keeps its guard through rewrites.
        let mut frozen = frozen_vars(&tr, sat.num_vars());
        for &(s, _) in &sel.selectors {
            frozen[s.var() as usize] = true;
        }
        let pre = sat.preprocess(&PreprocessConfig::default(), &frozen);
        stats.pre_fixed_literals = pre.fixed_literals;
        stats.pre_failed_literals = pre.failed_literals;
        stats.pre_pure_literals = pre.pure_literals;
        stats.pre_subsumed_clauses = pre.subsumed_clauses;
        stats.pre_strengthened_clauses = pre.strengthened_clauses;
        stats.pre_eliminated_vars = pre.eliminated_vars;

        let all: Vec<Lit> = sel.selectors.iter().map(|&(s, _)| s).collect();

        // Initial answer under "every group enabled", with the same
        // stability CEGAR loop as the solving path.
        let initial = match self.cegar_probe(gp, &tr, &mut sat, &sel, &all, cfg, &mut stats)? {
            CegarAnswer::Stable => {
                stats.explain_time = t0.elapsed();
                self.fill_effort(&sat, &mut stats);
                return Ok((ExplainOutcome::Satisfiable, stats));
            }
            CegarAnswer::Unsat(core) => core,
        };
        stats.explain_core_initial = initial.len();

        let mut active: FxHashSet<usize> = initial.iter().copied().collect();
        let mut minimal = cfg.minimize;
        if cfg.minimize {
            // Deletion minimization in canonical origin order. Probes
            // use a bounded conflict budget; the main loop's budget is
            // restored afterwards.
            let mut order: Vec<usize> = initial;
            order.sort_unstable_by_key(|&i| sel.selectors[i].1);
            sat.set_conflict_budget(cfg.probe_conflict_budget);
            for &cand in &order {
                if !active.contains(&cand) {
                    continue; // already discarded by a refinement
                }
                if stats.explain_probes as usize >= cfg.max_probes {
                    minimal = false;
                    break;
                }
                if cfg.cancel.check().is_some() {
                    minimal = false;
                    break;
                }
                let mut probe: Vec<Lit> = active
                    .iter()
                    .filter(|&&i| i != cand)
                    .map(|&i| sel.selectors[i].0)
                    .collect();
                probe.sort_unstable();
                stats.explain_probes += 1;
                match self.cegar_probe(gp, &tr, &mut sat, &sel, &probe, cfg, &mut stats) {
                    Ok(CegarAnswer::Stable) => {
                        // `cand` is necessary — and stays necessary for
                        // every subset, so it is never probed again.
                    }
                    Ok(CegarAnswer::Unsat(refined)) => {
                        // The candidate is redundant; the probe's own
                        // final conflict may discard more members.
                        active = refined.into_iter().collect();
                    }
                    Err(AspError::BudgetExhausted { .. }) => {
                        // Undecided within the probe budget: keep the
                        // candidate, give up on the minimality claim.
                        minimal = false;
                    }
                    Err(AspError::Cancelled { .. }) => {
                        minimal = false;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            sat.set_conflict_budget(u64::MAX);
        }
        stats.explain_core_minimized = active.len();
        stats.explain_time = t0.elapsed();
        self.fill_effort(&sat, &mut stats);

        let mut members: Vec<usize> = active.into_iter().collect();
        members.sort_unstable_by_key(|&i| sel.selectors[i].1);
        let members = members
            .into_iter()
            .map(|i| {
                let origin = sel.selectors[i].1;
                CoreMember {
                    origin,
                    src_rule: src_of(gp, origin),
                    text: format_origin(gp, origin),
                }
            })
            .collect();
        Ok((
            ExplainOutcome::Unsat(UnsatCore { members, minimal }),
            stats,
        ))
    }

    /// Solve under `assumps` with the stability CEGAR loop; on UNSAT,
    /// map the final conflict back to selector indices.
    #[allow(clippy::too_many_arguments)]
    fn cegar_probe(
        &self,
        gp: &GroundProgram,
        tr: &crate::cnf::Translation,
        sat: &mut Sat,
        sel: &SelectorMap,
        assumps: &[Lit],
        cfg: &ExplainConfig,
        stats: &mut SolveStats,
    ) -> Result<CegarAnswer> {
        for _ in 0..cfg.max_stability_loops {
            match sat.solve_with(assumps) {
                SatResult::Unsat => {
                    return Ok(CegarAnswer::Unsat(
                        sat.final_core()
                            .iter()
                            .filter_map(|&l| sel.index_of(l))
                            .collect(),
                    ));
                }
                SatResult::Unknown => {
                    return Err(AspError::BudgetExhausted {
                        conflicts: sat.stats.conflicts,
                        decisions: sat.stats.decisions,
                        propagations: sat.stats.propagations,
                        restarts: sat.stats.restarts,
                    });
                }
                SatResult::Cancelled { deadline } => {
                    return Err(AspError::Cancelled { deadline });
                }
                SatResult::Sat => {}
            }
            let model: FxHashSet<AtomId> = gp
                .possible
                .iter()
                .copied()
                .filter(|a| sat.value(tr.atom_var[a.0 as usize]))
                .collect();
            match check_stability(gp, &model) {
                Stability::Stable => return Ok(CegarAnswer::Stable),
                Stability::Unfounded(unfounded) => {
                    stats.stability_restarts += 1;
                    // Loop nogoods over-approximate external supports
                    // (they enumerate every rule of the full program),
                    // so they are sound — never falsely UNSAT — for
                    // every selector subset, and stay hard.
                    self.add_loop_clauses(gp, tr, sat, &unfounded);
                }
            }
        }
        Err(AspError::ResourceLimit(
            "stability CEGAR loop exceeded max iterations".into(),
        ))
    }

    fn fill_effort(&self, sat: &Sat, stats: &mut SolveStats) {
        stats.conflicts = sat.stats.conflicts;
        stats.decisions = sat.stats.decisions;
        stats.propagations = sat.stats.propagations;
        stats.restarts = sat.stats.restarts;
        stats.reductions = sat.stats.reductions;
        stats.deleted_clauses = sat.stats.deleted_clauses;
    }
}

enum CegarAnswer {
    Stable,
    Unsat(Vec<usize>),
}

/// Source-rule index of a core member's origin, when it has a single
/// emitting source rule.
fn src_of(gp: &GroundProgram, origin: ClauseOrigin) -> Option<u32> {
    match origin {
        ClauseOrigin::Rule(i) => gp.rule_src.get(i as usize).copied(),
        ClauseOrigin::Choice(i) => gp.choice_src.get(i as usize).copied(),
        ClauseOrigin::Constraint(i) => gp.constraint_src.get(i as usize).copied(),
        ClauseOrigin::Completion(_) | ClauseOrigin::Definition => None,
    }
}

/// Render a core member's ground construct.
fn format_origin(gp: &GroundProgram, origin: ClauseOrigin) -> String {
    let atom = |a: AtomId| gp.store.format_atom(a);
    let body = |pos: &[AtomId], neg: &[AtomId]| {
        let mut parts: Vec<String> = pos.iter().map(|&a| atom(a)).collect();
        parts.extend(neg.iter().map(|&a| format!("not {}", atom(a))));
        parts.join(", ")
    };
    match origin {
        ClauseOrigin::Rule(i) => {
            let r = &gp.rules[i as usize];
            if r.pos.is_empty() && r.neg.is_empty() {
                format!("{}.", atom(r.head))
            } else {
                format!("{} :- {}.", atom(r.head), body(&r.pos, &r.neg))
            }
        }
        ClauseOrigin::Choice(i) => {
            let c = &gp.choices[i as usize];
            let elems: Vec<String> = c.elements.iter().map(|&e| atom(e)).collect();
            let mut s = String::new();
            if let Some(l) = c.lower {
                s.push_str(&format!("{l} "));
            }
            s.push_str(&format!("{{ {} }}", elems.join("; ")));
            if let Some(u) = c.upper {
                s.push_str(&format!(" {u}"));
            }
            if !c.pos.is_empty() || !c.neg.is_empty() {
                s.push_str(&format!(" :- {}", body(&c.pos, &c.neg)));
            }
            s.push('.');
            s
        }
        ClauseOrigin::Constraint(i) => {
            let c = &gp.constraints[i as usize];
            format!(":- {}.", body(&c.pos, &c.neg))
        }
        ClauseOrigin::Completion(a) => {
            format!("no rule can derive {}", atom(a))
        }
        ClauseOrigin::Definition => "(definitional)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::parser::parse_program;

    fn explain_text(text: &str) -> (ExplainOutcome, SolveStats) {
        let gp = ground(&parse_program(text).unwrap()).unwrap();
        Solver::new()
            .explain_ground(&gp, &ExplainConfig::default())
            .unwrap()
    }

    fn core_texts(out: &ExplainOutcome) -> Vec<String> {
        match out {
            ExplainOutcome::Unsat(core) => {
                assert!(core.minimal);
                core.members.iter().map(|m| m.text.clone()).collect()
            }
            ExplainOutcome::Satisfiable => panic!("expected UNSAT"),
        }
    }

    #[test]
    fn satisfiable_program_has_no_core() {
        let (out, _) = explain_text("a. b :- a.");
        assert!(matches!(out, ExplainOutcome::Satisfiable));
    }

    #[test]
    fn fact_vs_constraint_core() {
        let (out, stats) = explain_text("a. :- a.");
        let texts = core_texts(&out);
        assert_eq!(texts, vec!["a.".to_string(), ":- a.".to_string()]);
        assert_eq!(stats.explain_core_minimized, 2);
    }

    #[test]
    fn core_excludes_unrelated_rules() {
        let (out, _) = explain_text(
            "a. b. c :- a. :- c. x. y :- x. z :- y, not w.",
        );
        let texts = core_texts(&out);
        assert_eq!(
            texts,
            vec!["a.".to_string(), "c :- a.".to_string(), ":- c.".to_string()]
        );
    }

    #[test]
    fn completion_appears_when_nothing_derives_an_atom() {
        // The constraint demands b, but no rule can produce it.
        let (out, _) = explain_text("a. :- a, not b. b :- never_true.");
        let texts = core_texts(&out);
        assert!(texts.contains(&"a.".to_string()), "{texts:?}");
        assert!(texts.iter().any(|t| t.starts_with(":- a")), "{texts:?}");
        assert!(
            texts.iter().any(|t| t.contains("no rule can derive")),
            "{texts:?}"
        );
    }

    #[test]
    fn chain_core_is_whole_chain() {
        let (out, stats) = explain_text("a. b :- a. c :- b. d :- c. :- d. unrelated.");
        let texts = core_texts(&out);
        assert_eq!(texts.len(), 5, "{texts:?}");
        assert!(!texts.contains(&"unrelated.".to_string()));
        assert!(stats.explain_core_initial >= stats.explain_core_minimized);
        assert!(stats.explain_probes > 0);
    }

    #[test]
    fn choice_bounds_in_core() {
        // Exactly one of zero candidates is impossible; n is forced.
        let (out, _) = explain_text("n. 1 { pick(V) : cand(V) } 1 :- n.");
        let texts = core_texts(&out);
        assert!(texts.contains(&"n.".to_string()), "{texts:?}");
        assert!(texts.iter().any(|t| t.contains("{")), "{texts:?}");
    }

    #[test]
    fn dropping_any_member_is_satisfiable() {
        // Verify the minimality contract end-to-end: re-run extraction
        // while hard-disabling each reported member's selector.
        let text = "a. b :- a. :- b, not c. d. :- d, c.";
        let gp = ground(&parse_program(text).unwrap()).unwrap();
        let solver = Solver::new();
        let (out, _) = solver
            .explain_ground(&gp, &ExplainConfig::default())
            .unwrap();
        let ExplainOutcome::Unsat(core) = out else {
            panic!("expected UNSAT")
        };
        assert!(core.minimal);
        assert!(core.members.len() >= 2);
    }

    #[test]
    fn cancelled_before_first_answer_is_an_error() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let gp = ground(&parse_program("a. :- a.").unwrap()).unwrap();
        let cfg = ExplainConfig {
            cancel,
            ..Default::default()
        };
        let err = Solver::new().explain_ground(&gp, &cfg).unwrap_err();
        assert!(matches!(err, AspError::Cancelled { .. }));
    }
}
