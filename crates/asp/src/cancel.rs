//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that a caller keeps
//! and a solver polls. Cancellation has two triggers — an explicit
//! [`CancelToken::cancel`] call from another thread, or an optional
//! wall-clock deadline — and both resolve to the same cooperative
//! contract: the CDCL search loop polls the token between search steps
//! and unwinds with a structured `Cancelled` result, leaving the solver
//! reusable. Polling a token created with [`CancelToken::none`] is a
//! single branch on an empty `Option`, so the non-cancellable fast path
//! costs nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Set (before `cancelled`) when the cancellation came from the
    /// deadline rather than an explicit `cancel()` call.
    deadline_hit: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation flag with an optional wall-clock deadline.
///
/// Clones share state: cancelling any clone cancels them all. The
/// default token ([`CancelToken::none`]) can never fire.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never fires — the zero-cost default.
    pub fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_hit: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that fires once `timeout` has elapsed from now (and can
    /// also be cancelled manually before that).
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline_at(Instant::now() + timeout)
    }

    /// A token that fires at `deadline`.
    pub fn with_deadline_at(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_hit: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Whether this token can ever fire.
    pub fn is_cancellable(&self) -> bool {
        self.inner.is_some()
    }

    /// Request cancellation. Idempotent; a no-op on [`CancelToken::none`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Poll the token. Returns `Some(deadline_expired)` once cancelled:
    /// `true` when the wall-clock deadline fired, `false` for an explicit
    /// [`CancelToken::cancel`]. Checks the deadline lazily, so a token is
    /// "cancelled by deadline" the first time it is polled past it.
    pub fn check(&self) -> Option<bool> {
        let inner = self.inner.as_ref()?;
        if inner.cancelled.load(Ordering::Acquire) {
            return Some(inner.deadline_hit.load(Ordering::Acquire));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                inner.deadline_hit.store(true, Ordering::Release);
                inner.cancelled.store(true, Ordering::Release);
                return Some(true);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let t = CancelToken::none();
        t.cancel();
        assert_eq!(t.check(), None);
        assert!(!t.is_cancellable());
    }

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert_eq!(u.check(), None);
        t.cancel();
        assert_eq!(u.check(), Some(false), "manual cancel, not a deadline");
        assert_eq!(t.check(), Some(false));
    }

    #[test]
    fn expired_deadline_reports_as_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.check(), Some(true));
        // Sticky after the first observation.
        assert_eq!(t.check(), Some(true));
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(t.check(), None);
        t.cancel();
        assert_eq!(t.check(), Some(false), "manual cancel beat the deadline");
    }
}
