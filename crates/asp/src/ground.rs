//! The grounder: instantiates a [`Program`]'s rules over an
//! over-approximated Herbrand base, producing a propositional
//! [`GroundProgram`] for the CNF translator.
//!
//! ## Algorithm
//!
//! 1. **Possible-atom closure** (semi-naive): starting from facts, derive
//!    every atom that *could* be true — heads of normal rules and choice
//!    elements — by joining positive bodies against the growing set.
//!    Negative literals are ignored (over-approximation); comparison
//!    builtins are evaluated (they are deterministic).
//! 2. **Emission pass**: with the closure fixed, instantiate every normal
//!    rule once more and emit ground rules, deduplicated.
//! 3. **Certainty closure**: atoms derivable through negation-free rules
//!    from facts are *certain*.
//! 4. **Choice/constraint/minimize emission**: choice-element conditions
//!    must be certain — this engine (like the concretizer program it
//!    serves) treats them as domain predicates; a condition over a
//!    genuinely model-dependent predicate is an error rather than a
//!    silent mis-solve. Minimize conditions stay model-dependent.
//!
//! Joins are index-backed: per (predicate, arity) relations with
//! per-argument-position hash indexes (pre-declared by a static probe
//! analysis, incrementally maintained), so fact bases with many
//! thousands of `hash_attr` entries ground quickly.
//!
//! ## Parallelism and determinism
//!
//! Rule instantiation is split into *join* work (enumerate matching
//! substitutions — read-only over the grounder state) and *emission*
//! work (intern head atoms, assign ids, record ground rules — mutating).
//! Joins for a batch of work items run on a bounded
//! [`std::thread::scope`] pool; their results are then emitted **in work
//! item order** by the single-threaded master. Because joins never
//! mutate the store and the master replays matches in the same order the
//! sequential path would produce them, the grounded program — every
//! rule, choice, constraint, minimize term, the atom *numbering*, and
//! the term numbering — is bit-identical for every thread count. See
//! DESIGN.md ("Parallel grounding") for the full argument.

use crate::program::{BodyElem, CmpOp, Head, Program, Rule};
use crate::term::{Atom, AtomId, GroundStore, GroundTerm, Term, TermId};
use crate::{AspError, Result};
use rustc_hash::{FxHashMap, FxHashSet};
use spackle_spec::Sym;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

/// A ground normal rule (`head :- pos, not neg`). Facts have empty bodies.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundRule {
    /// Head atom.
    pub head: AtomId,
    /// Positive body atoms.
    pub pos: Box<[AtomId]>,
    /// Negated body atoms.
    pub neg: Box<[AtomId]>,
}

/// A ground choice instance.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundChoice {
    /// Cardinality lower bound (enforced when the body holds).
    pub lower: Option<u32>,
    /// Cardinality upper bound (enforced when the body holds).
    pub upper: Option<u32>,
    /// Positive body atoms.
    pub pos: Box<[AtomId]>,
    /// Negated body atoms.
    pub neg: Box<[AtomId]>,
    /// Choosable element atoms (deduplicated, in derivation order).
    pub elements: Box<[AtomId]>,
}

/// A ground integrity constraint (`:- pos, not neg`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundConstraint {
    /// Positive body atoms.
    pub pos: Box<[AtomId]>,
    /// Negated body atoms.
    pub neg: Box<[AtomId]>,
}

/// A ground minimize term: contributes `weight` at `priority` when its
/// condition holds. Distinct `tuple`s contribute independently; identical
/// tuples with multiple conditions contribute once if *any* condition
/// holds (Clingo set-of-tuples semantics).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundMin {
    /// Weight (must be non-negative in this engine).
    pub weight: i64,
    /// Priority level; higher optimizes first.
    pub priority: i64,
    /// Distinguishing tuple.
    pub tuple: Box<[TermId]>,
    /// Positive condition atoms.
    pub pos: Box<[AtomId]>,
    /// Negated condition atoms.
    pub neg: Box<[AtomId]>,
}

/// The grounded program.
pub struct GroundProgram {
    /// Hash-cons store for ground terms/atoms.
    pub store: GroundStore,
    /// Ground normal rules, including facts.
    pub rules: Vec<GroundRule>,
    /// Ground choice instances.
    pub choices: Vec<GroundChoice>,
    /// Ground integrity constraints.
    pub constraints: Vec<GroundConstraint>,
    /// Ground minimize terms.
    pub minimize: Vec<GroundMin>,
    /// Provenance: for each entry of `rules`, the index of the source
    /// [`Program`](crate::program::Program) rule that emitted it. When
    /// two source rules ground to the same (deduplicated) instance, the
    /// first emitter in rule order wins.
    pub rule_src: Vec<u32>,
    /// Provenance: source rule index per entry of `choices`.
    pub choice_src: Vec<u32>,
    /// Provenance: source rule index per entry of `constraints`.
    pub constraint_src: Vec<u32>,
    /// Atoms certain to hold in every model (facts plus negation-free
    /// consequences of facts).
    pub certain: FxHashSet<AtomId>,
    /// Atoms that can possibly be true (the over-approximated base).
    pub possible: FxHashSet<AtomId>,
}

impl GroundProgram {
    /// Total number of interned atoms (the propositional universe).
    pub fn atom_count(&self) -> usize {
        self.store.atom_count()
    }

    /// 128-bit content fingerprint of the *entire* grounding: the term
    /// and atom interning tables (so `AtomId`s mean the same thing),
    /// every rule/choice/constraint/minimize instance, the provenance
    /// tables, and the certain/possible sets. Two programs with equal
    /// fingerprints are structurally identical, so a CNF translation of
    /// one is a valid translation of the other — this is the key that
    /// lets a delta update salvage retained translations when a
    /// re-ground reproduces the exact same program.
    pub fn content_fingerprint(&self) -> u128 {
        use std::hash::{Hash, Hasher};
        let mut lo = std::collections::hash_map::DefaultHasher::new();
        // Two independent 64-bit digests (distinct salts) make an
        // accidental collision — which would splice a wrong CNF into a
        // bit-identical-output pipeline — astronomically unlikely.
        let mut hi = std::collections::hash_map::DefaultHasher::new();
        0x5eedu64.hash(&mut lo);
        0xfacadeu64.hash(&mut hi);
        for h in [&mut lo, &mut hi] {
            self.store.hash_content(h);
            self.rules.hash(h);
            self.choices.hash(h);
            self.constraints.hash(h);
            self.minimize.hash(h);
            self.rule_src.hash(h);
            self.choice_src.hash(h);
            self.constraint_src.hash(h);
            let mut certain: Vec<AtomId> = self.certain.iter().copied().collect();
            certain.sort_unstable();
            certain.hash(h);
            let mut possible: Vec<AtomId> = self.possible.iter().copied().collect();
            possible.sort_unstable();
            possible.hash(h);
        }
        ((hi.finish() as u128) << 64) | lo.finish() as u128
    }
}

/// Resource limits for grounding.
#[derive(Clone, Copy, Debug)]
pub struct GroundLimits {
    /// Maximum number of distinct possible atoms before aborting.
    pub max_atoms: usize,
    /// Maximum number of emitted ground rules before aborting.
    pub max_rules: usize,
}

impl Default for GroundLimits {
    fn default() -> Self {
        GroundLimits {
            max_atoms: 20_000_000,
            max_rules: 50_000_000,
        }
    }
}

// ---------------------------------------------------------------------
// Normalized rules and safety
// ---------------------------------------------------------------------

#[derive(Clone)]
struct NormBody {
    pos: Vec<Atom>,
    neg: Vec<Atom>,
    cmps: Vec<(Term, CmpOp, Term)>,
}

fn normalize_body(body: &[BodyElem]) -> NormBody {
    let mut nb = NormBody {
        pos: Vec::new(),
        neg: Vec::new(),
        cmps: Vec::new(),
    };
    for e in body {
        match e {
            BodyElem::Pos(a) => nb.pos.push(a.clone()),
            BodyElem::Neg(a) => nb.neg.push(a.clone()),
            BodyElem::Cmp(l, op, r) => nb.cmps.push((l.clone(), *op, r.clone())),
        }
    }
    nb
}

/// Where an unsafe variable was found within a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SafetyContext {
    /// In a negated body literal.
    NegativeLiteral,
    /// In a comparison builtin.
    Comparison,
    /// In the head atom.
    Head,
    /// In a choice-element atom.
    ChoiceElement,
    /// In a negated literal of a choice-element condition.
    ChoiceConditionNegation,
    /// In a comparison of a choice-element condition.
    ChoiceConditionComparison,
}

impl std::fmt::Display for SafetyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SafetyContext::NegativeLiteral => "negative literal",
            SafetyContext::Comparison => "comparison",
            SafetyContext::Head => "head",
            SafetyContext::ChoiceElement => "choice element",
            SafetyContext::ChoiceConditionNegation => "choice condition negation",
            SafetyContext::ChoiceConditionComparison => "choice condition comparison",
        })
    }
}

/// An unsafe variable occurrence: a variable in a head, negated literal,
/// or comparison that no positive body literal binds.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeVariable {
    /// The unbound variable.
    pub variable: Sym,
    /// Where it occurred.
    pub context: SafetyContext,
}

/// All unsafe variable occurrences of `rule`, deduplicated, in
/// discovery order. Empty iff the rule is safe. The grounder rejects
/// unsafe rules; `spackle-audit` reports the same occurrences as
/// diagnostics with rule locations.
pub fn unsafe_variables(rule: &Rule) -> Vec<UnsafeVariable> {
    let nb = normalize_body(&rule.body);
    let mut bound: Vec<Sym> = Vec::new();
    for a in &nb.pos {
        a.collect_vars(&mut bound);
    }
    let mut out: Vec<UnsafeVariable> = Vec::new();
    let mut check = |vars: Vec<Sym>, extra: &[Sym], context: SafetyContext| {
        for v in vars {
            if !bound.contains(&v) && !extra.contains(&v) {
                let u = UnsafeVariable {
                    variable: v,
                    context,
                };
                if !out.contains(&u) {
                    out.push(u);
                }
            }
        }
    };
    for a in &nb.neg {
        let mut vs = Vec::new();
        a.collect_vars(&mut vs);
        check(vs, &[], SafetyContext::NegativeLiteral);
    }
    for (l, _, r) in &nb.cmps {
        let mut vs = Vec::new();
        l.collect_vars(&mut vs);
        r.collect_vars(&mut vs);
        check(vs, &[], SafetyContext::Comparison);
    }
    match &rule.head {
        Head::None => {}
        Head::Atom(a) => {
            let mut vs = Vec::new();
            a.collect_vars(&mut vs);
            check(vs, &[], SafetyContext::Head);
        }
        Head::Choice { elements, .. } => {
            for el in elements {
                let cond = normalize_body(&el.condition);
                let mut cond_vars: Vec<Sym> = Vec::new();
                for a in &cond.pos {
                    a.collect_vars(&mut cond_vars);
                }
                let mut vs = Vec::new();
                el.atom.collect_vars(&mut vs);
                check(vs, &cond_vars, SafetyContext::ChoiceElement);
                for a in &cond.neg {
                    let mut nvs = Vec::new();
                    a.collect_vars(&mut nvs);
                    check(nvs, &cond_vars, SafetyContext::ChoiceConditionNegation);
                }
                for (l, _, r) in &cond.cmps {
                    let mut cvs = Vec::new();
                    l.collect_vars(&mut cvs);
                    r.collect_vars(&mut cvs);
                    check(cvs, &cond_vars, SafetyContext::ChoiceConditionComparison);
                }
            }
        }
    }
    out
}

fn check_safety(rule: &Rule) -> Result<()> {
    match unsafe_variables(rule).into_iter().next() {
        None => Ok(()),
        Some(u) => Err(AspError::Unsafe {
            rule: format!("{rule} ({})", u.context),
            variable: u.variable.as_str().to_string(),
        }),
    }
}

// ---------------------------------------------------------------------
// Substitutions
// ---------------------------------------------------------------------

type Subst = Vec<(Sym, TermId)>;

fn lookup(s: &Subst, v: Sym) -> Option<TermId> {
    s.iter().rev().find(|(k, _)| *k == v).map(|(_, t)| *t)
}

/// Resolve `t` under `s` to a ground term id, interning as needed.
/// Returns `None` when an unbound variable remains.
fn resolve(store: &mut GroundStore, s: &Subst, t: &Term) -> Option<TermId> {
    match t {
        Term::Int(i) => Some(store.term(GroundTerm::Int(*i))),
        Term::Sym(x) => Some(store.term(GroundTerm::Sym(*x))),
        Term::Str(x) => Some(store.term(GroundTerm::Str(*x))),
        Term::Var(v) => lookup(s, *v),
        Term::Func(name, args) => {
            let mut kids = Vec::with_capacity(args.len());
            for a in args {
                kids.push(resolve(store, s, a)?);
            }
            Some(store.term(GroundTerm::Func(*name, kids.into())))
        }
    }
}

/// Resolve `t` under `s` to an *already interned* ground term id,
/// without interning. `None` means either an unbound variable (ruled
/// out at probe positions by the static analysis) or a ground term that
/// is not in the store — in which case no interned atom can contain it,
/// so a candidate lookup on it is correctly empty.
fn lookup_resolved(store: &GroundStore, s: &Subst, t: &Term) -> Option<TermId> {
    match t {
        Term::Int(i) => store.find_term(&GroundTerm::Int(*i)),
        Term::Sym(x) => store.find_term(&GroundTerm::Sym(*x)),
        Term::Str(x) => store.find_term(&GroundTerm::Str(*x)),
        Term::Var(v) => lookup(s, *v),
        Term::Func(name, args) => {
            let mut kids = Vec::with_capacity(args.len());
            for a in args {
                kids.push(lookup_resolved(store, s, a)?);
            }
            store.find_term(&GroundTerm::Func(*name, kids.into()))
        }
    }
}

/// Unify pattern `t` with ground term `tid` under `s`, appending new
/// bindings. On mismatch returns false; caller truncates `s`.
fn unify(store: &GroundStore, s: &mut Subst, t: &Term, tid: TermId) -> bool {
    match t {
        Term::Int(i) => matches!(store.term_data(tid), GroundTerm::Int(j) if i == j),
        Term::Sym(x) => matches!(store.term_data(tid), GroundTerm::Sym(y) if x == y),
        Term::Str(x) => matches!(store.term_data(tid), GroundTerm::Str(y) if x == y),
        Term::Var(v) => match lookup(s, *v) {
            Some(existing) => existing == tid,
            None => {
                s.push((*v, tid));
                true
            }
        },
        Term::Func(name, args) => match store.term_data(tid) {
            GroundTerm::Func(n2, kids) if n2 == name && kids.len() == args.len() => args
                .iter()
                .zip(kids.iter())
                .all(|(a, &k)| unify(store, s, a, k)),
            _ => false,
        },
    }
}

// ---------------------------------------------------------------------
// Comparison evaluation without interning
// ---------------------------------------------------------------------

/// A term being compared: either a pattern term (with variables resolved
/// through the substitution) or an interned ground term.
#[derive(Clone, Copy)]
enum TermView<'a> {
    Pat(&'a Term),
    Id(TermId),
}

/// Compare two terms under `s` by the store's total order (ints < syms <
/// strings < funcs), without interning anything. Errors on unbound
/// variables (safety guarantees they cannot occur).
fn cmp_resolved(
    store: &GroundStore,
    s: &Subst,
    a: TermView<'_>,
    b: TermView<'_>,
) -> Result<Ordering> {
    fn deref<'a>(_store: &GroundStore, s: &Subst, v: TermView<'a>) -> Result<TermView<'a>> {
        match v {
            TermView::Pat(Term::Var(x)) => match lookup(s, *x) {
                Some(id) => Ok(TermView::Id(id)),
                None => Err(AspError::Internal(format!(
                    "comparison operand not ground: variable {x}"
                ))),
            },
            other => Ok(other),
        }
    }
    fn rank(store: &GroundStore, v: TermView<'_>) -> u8 {
        match v {
            TermView::Pat(Term::Int(_)) => 0,
            TermView::Pat(Term::Sym(_)) => 1,
            TermView::Pat(Term::Str(_)) => 2,
            TermView::Pat(Term::Func(..)) => 3,
            TermView::Pat(Term::Var(_)) => unreachable!("deref resolved variables"),
            TermView::Id(id) => match store.term_data(id) {
                GroundTerm::Int(_) => 0,
                GroundTerm::Sym(_) => 1,
                GroundTerm::Str(_) => 2,
                GroundTerm::Func(..) => 3,
            },
        }
    }
    let a = deref(store, s, a)?;
    let b = deref(store, s, b)?;
    if let (TermView::Id(x), TermView::Id(y)) = (a, b) {
        return Ok(store.compare(x, y));
    }
    let (ra, rb) = (rank(store, a), rank(store, b));
    if ra != rb {
        return Ok(ra.cmp(&rb));
    }
    match ra {
        0 => {
            let get = |v: TermView<'_>| match v {
                TermView::Pat(Term::Int(i)) => *i,
                TermView::Id(id) => match store.term_data(id) {
                    GroundTerm::Int(i) => *i,
                    _ => unreachable!("rank matched"),
                },
                _ => unreachable!("rank matched"),
            };
            Ok(get(a).cmp(&get(b)))
        }
        1 | 2 => {
            let get = |v: TermView<'_>| match v {
                TermView::Pat(Term::Sym(x)) | TermView::Pat(Term::Str(x)) => *x,
                TermView::Id(id) => match store.term_data(id) {
                    GroundTerm::Sym(x) | GroundTerm::Str(x) => *x,
                    _ => unreachable!("rank matched"),
                },
                _ => unreachable!("rank matched"),
            };
            Ok(get(a).cmp(&get(b)))
        }
        _ => {
            enum FuncView<'a> {
                Pat(&'a [Term]),
                Id(&'a [TermId]),
            }
            impl FuncView<'_> {
                fn len(&self) -> usize {
                    match self {
                        FuncView::Pat(args) => args.len(),
                        FuncView::Id(kids) => kids.len(),
                    }
                }
            }
            fn as_func<'a>(store: &'a GroundStore, v: TermView<'a>) -> (Sym, FuncView<'a>) {
                match v {
                    TermView::Pat(Term::Func(n, args)) => (*n, FuncView::Pat(args)),
                    TermView::Id(id) => match store.term_data(id) {
                        GroundTerm::Func(n, kids) => (*n, FuncView::Id(kids)),
                        _ => unreachable!("rank matched"),
                    },
                    _ => unreachable!("rank matched"),
                }
            }
            fn kid<'a>(f: &FuncView<'a>, i: usize) -> TermView<'a> {
                match f {
                    FuncView::Pat(args) => TermView::Pat(&args[i]),
                    FuncView::Id(kids) => TermView::Id(kids[i]),
                }
            }
            let (na, fa) = as_func(store, a);
            let (nb, fb) = as_func(store, b);
            let head = na.cmp(&nb).then_with(|| fa.len().cmp(&fb.len()));
            if head != Ordering::Equal {
                return Ok(head);
            }
            for i in 0..fa.len() {
                match cmp_resolved(store, s, kid(&fa, i), kid(&fb, i))? {
                    Ordering::Equal => continue,
                    ord => return Ok(ord),
                }
            }
            Ok(Ordering::Equal)
        }
    }
}

/// Evaluate all comparison builtins under `s`; true when every one
/// holds. Never interns.
fn eval_cmps(store: &GroundStore, s: &Subst, cmps: &[(Term, CmpOp, Term)]) -> Result<bool> {
    for (l, op, r) in cmps {
        let ord = cmp_resolved(store, s, TermView::Pat(l), TermView::Pat(r))?;
        let hold = match op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        };
        if !hold {
            return Ok(false);
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------
// Join plans: static probe analysis
// ---------------------------------------------------------------------

/// A compiled positive-body join: the literal patterns, the comparison
/// filters, and one statically chosen *probe* argument position per
/// literal.
///
/// The probe for literal `j` is the first argument position whose
/// variables are all bound once literals `0..j` (plus the join's initial
/// bindings) have matched. This is exactly the position the previous
/// implementation selected dynamically per candidate lookup — a variable
/// is bound at runtime iff it occurs in an earlier positive literal or
/// the initial substitution — but knowing it up front lets the grounder
/// pre-declare the per-position hash indexes and maintain them
/// incrementally instead of rebuilding them lazily mid-join.
struct JoinSpec {
    pats: Vec<Atom>,
    cmps: Vec<(Term, CmpOp, Term)>,
    probes: Vec<Option<usize>>,
}

impl JoinSpec {
    fn new(pats: Vec<Atom>, cmps: Vec<(Term, CmpOp, Term)>, init_bound: &FxHashSet<Sym>) -> Self {
        let probes = probe_positions(&pats, init_bound);
        JoinSpec { pats, cmps, probes }
    }
}

/// For each literal, the first argument position fully bound by earlier
/// literals plus `init_bound` (constants count as bound), or `None` when
/// every position contains an unbound variable (full-scan literal).
fn probe_positions(pats: &[Atom], init_bound: &FxHashSet<Sym>) -> Vec<Option<usize>> {
    let mut bound: FxHashSet<Sym> = init_bound.clone();
    let mut probes = Vec::with_capacity(pats.len());
    for a in pats {
        let mut probe = None;
        for (i, arg) in a.args.iter().enumerate() {
            let mut vs = Vec::new();
            arg.collect_vars(&mut vs);
            if vs.iter().all(|v| bound.contains(v)) {
                probe = Some(i);
                break;
            }
        }
        probes.push(probe);
        let mut vs = Vec::new();
        a.collect_vars(&mut vs);
        bound.extend(vs);
    }
    probes
}

/// A choice element, compiled: the element atom, the combined
/// body+condition join used during the possible-atom closure, and the
/// condition-only join (seeded with the outer body's bindings) used at
/// choice-emission time.
struct ElemPlan<'a> {
    atom: &'a Atom,
    closure: JoinSpec,
    cond: JoinSpec,
    cond_neg: Vec<Atom>,
}

enum HeadPlan<'a> {
    Atom(&'a Atom),
    Choice {
        lower: Option<u32>,
        upper: Option<u32>,
        elements: Vec<ElemPlan<'a>>,
    },
    Constraint,
}

struct RulePlan<'a> {
    head: HeadPlan<'a>,
    body: JoinSpec,
    neg: Vec<Atom>,
}

fn plan_rules(program: &Program) -> Vec<RulePlan<'_>> {
    let empty: FxHashSet<Sym> = FxHashSet::default();
    program
        .rules
        .iter()
        .map(|r| {
            let nb = normalize_body(&r.body);
            let head = match &r.head {
                Head::Atom(a) => HeadPlan::Atom(a),
                Head::None => HeadPlan::Constraint,
                Head::Choice {
                    lower,
                    upper,
                    elements,
                } => {
                    let mut body_vars: FxHashSet<Sym> = FxHashSet::default();
                    for a in &nb.pos {
                        let mut vs = Vec::new();
                        a.collect_vars(&mut vs);
                        body_vars.extend(vs);
                    }
                    let elems = elements
                        .iter()
                        .map(|el| {
                            let cond = normalize_body(&el.condition);
                            let mut closure_pats = nb.pos.clone();
                            closure_pats.extend(cond.pos.iter().cloned());
                            let mut closure_cmps = nb.cmps.clone();
                            closure_cmps.extend(cond.cmps.iter().cloned());
                            ElemPlan {
                                atom: &el.atom,
                                closure: JoinSpec::new(closure_pats, closure_cmps, &empty),
                                cond: JoinSpec::new(cond.pos, cond.cmps, &body_vars),
                                cond_neg: cond.neg,
                            }
                        })
                        .collect();
                    HeadPlan::Choice {
                        lower: *lower,
                        upper: *upper,
                        elements: elems,
                    }
                }
            };
            RulePlan {
                head,
                body: JoinSpec::new(nb.pos, nb.cmps, &empty),
                neg: nb.neg,
            }
        })
        .collect()
}

/// Every (predicate, arity, argument position) any join will ever probe,
/// so the relations can install those indexes at creation time.
fn collect_wanted(
    plans: &[RulePlan<'_>],
    min_plans: &[(JoinSpec, Vec<Atom>)],
) -> FxHashMap<(Sym, usize), Vec<usize>> {
    let mut wanted: FxHashMap<(Sym, usize), FxHashSet<usize>> = FxHashMap::default();
    let mut add = |spec: &JoinSpec| {
        for (a, p) in spec.pats.iter().zip(&spec.probes) {
            if let Some(p) = p {
                wanted.entry((a.pred, a.args.len())).or_default().insert(*p);
            }
        }
    };
    for rp in plans {
        add(&rp.body);
        if let HeadPlan::Choice { elements, .. } = &rp.head {
            for el in elements {
                add(&el.closure);
                add(&el.cond);
            }
        }
    }
    for (spec, _) in min_plans {
        add(spec);
    }
    wanted
        .into_iter()
        .map(|(k, v)| {
            let mut v: Vec<usize> = v.into_iter().collect();
            v.sort_unstable();
            (k, v)
        })
        .collect()
}

// ---------------------------------------------------------------------
// The grounder
// ---------------------------------------------------------------------

#[derive(Default)]
struct PredRel {
    atoms: Vec<AtomId>,
    /// Pre-declared index per probed argument position, maintained
    /// incrementally as atoms become possible (buckets keep rank order).
    by_arg: FxHashMap<usize, FxHashMap<TermId, Vec<AtomId>>>,
}

struct Grounder {
    store: GroundStore,
    rels: FxHashMap<(Sym, usize), PredRel>,
    /// Rank (possible-insertion order) per atom id; usize::MAX = not
    /// (yet) possible. Indexed by AtomId.0.
    rank_of: Vec<usize>,
    possible: Vec<AtomId>,
    limits: GroundLimits,
    /// Worker threads for join batches (1 = fully sequential).
    threads: usize,
    /// Index positions each (predicate, arity) relation must maintain.
    wanted: FxHashMap<(Sym, usize), Vec<usize>>,
}

/// One complete instantiation of a body: the substitution and the chosen
/// positive atoms (in literal order).
struct Match {
    subst: Subst,
    chosen: Vec<AtomId>,
}

/// One join invocation: a compiled spec, initial bindings, and an
/// optional semi-naive delta restriction `(literal, lo_rank, hi_rank)`.
struct JoinJob<'p> {
    spec: &'p JoinSpec,
    init: Subst,
    delta: Option<(usize, usize, usize)>,
}

impl Grounder {
    fn new(limits: GroundLimits, threads: usize, wanted: FxHashMap<(Sym, usize), Vec<usize>>) -> Self {
        Grounder {
            store: GroundStore::new(),
            rels: FxHashMap::default(),
            rank_of: Vec::new(),
            possible: Vec::new(),
            limits,
            threads: threads.max(1),
            wanted,
        }
    }

    fn rank(&self, a: AtomId) -> usize {
        self.rank_of
            .get(a.0 as usize)
            .copied()
            .unwrap_or(usize::MAX)
    }

    fn is_possible(&self, a: AtomId) -> bool {
        self.rank(a) != usize::MAX
    }

    /// Mark `id` possible; returns true when newly added.
    fn add_possible(&mut self, id: AtomId) -> bool {
        if self.rank_of.len() <= id.0 as usize {
            self.rank_of.resize(id.0 as usize + 1, usize::MAX);
        }
        if self.rank_of[id.0 as usize] != usize::MAX {
            return false;
        }
        self.rank_of[id.0 as usize] = self.possible.len();
        self.possible.push(id);
        let (pred, args) = self.store.atom_data(id);
        let key = (pred, args.len());
        if !self.rels.contains_key(&key) {
            let mut rel = PredRel::default();
            if let Some(ps) = self.wanted.get(&key) {
                for &p in ps {
                    rel.by_arg.insert(p, FxHashMap::default());
                }
            }
            self.rels.insert(key, rel);
        }
        let rel = self.rels.get_mut(&key).expect("just ensured");
        rel.atoms.push(id);
        for (&p, map) in rel.by_arg.iter_mut() {
            map.entry(args[p]).or_default().push(id);
        }
        true
    }

    /// Candidate atoms matching `pattern` under `s`: the pre-declared
    /// index bucket when a probe position was chosen statically, the
    /// whole relation otherwise. Read-only — safe to call from join
    /// workers. (A probe term that was never interned can occur in no
    /// atom, so the empty slice is exact.)
    fn candidates(&self, s: &Subst, pattern: &Atom, probe: Option<usize>) -> &[AtomId] {
        let key = (pattern.pred, pattern.args.len());
        let Some(rel) = self.rels.get(&key) else {
            return &[];
        };
        match probe {
            Some(p) => {
                let Some(tid) = lookup_resolved(&self.store, s, &pattern.args[p]) else {
                    return &[];
                };
                match rel
                    .by_arg
                    .get(&p)
                    .expect("probe position pre-declared by collect_wanted")
                    .get(&tid)
                {
                    Some(bucket) => bucket,
                    None => &[],
                }
            }
            None => &rel.atoms,
        }
    }

    /// Enumerate instantiations of `job.spec` starting from `job.init`.
    /// Read-only over the grounder; all interning is deferred to the
    /// caller (the single-threaded master).
    fn run_job(&self, job: &JoinJob<'_>) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        let mut s = job.init.clone();
        let mut chosen = Vec::with_capacity(job.spec.pats.len());
        self.join_rec(job.spec, 0, job.delta, &mut s, &mut chosen, &mut out)?;
        Ok(out)
    }

    fn join_rec(
        &self,
        spec: &JoinSpec,
        i: usize,
        delta: Option<(usize, usize, usize)>,
        s: &mut Subst,
        chosen: &mut Vec<AtomId>,
        out: &mut Vec<Match>,
    ) -> Result<()> {
        if i == spec.pats.len() {
            // All positive literals matched; evaluate comparisons.
            if !eval_cmps(&self.store, s, &spec.cmps)? {
                return Ok(());
            }
            out.push(Match {
                subst: s.clone(),
                chosen: chosen.clone(),
            });
            return Ok(());
        }
        let (lo, hi) = match delta {
            Some((dpos, lo, hi)) if dpos == i => (lo, hi),
            _ => (0, usize::MAX),
        };
        let cands = self.candidates(s, &spec.pats[i], spec.probes[i]);
        for &cand in cands {
            if lo != 0 || hi != usize::MAX {
                let r = self.rank(cand);
                if r < lo || r >= hi {
                    continue;
                }
            }
            let mark = s.len();
            let (_, args) = self.store.atom_data(cand);
            let ok = spec.pats[i]
                .args
                .iter()
                .zip(args.iter())
                .all(|(p, &t)| unify(&self.store, s, p, t));
            if ok {
                chosen.push(cand);
                self.join_rec(spec, i + 1, delta, s, chosen, out)?;
                chosen.pop();
            }
            s.truncate(mark);
        }
        Ok(())
    }

    /// Smallest batch worth spawning workers for: below this, the
    /// per-round `thread::scope` spawn/join cost exceeds the join work
    /// itself (measured on the fig5/fig6 workloads, where per-round
    /// overhead made "parallel" grounding *slower* than sequential).
    const MIN_PARALLEL_BATCH: usize = 32;

    /// Effective worker count for a batch of `n` jobs: the configured
    /// thread count, clamped to the host's available parallelism — on a
    /// 1-CPU box a requested `--ground-threads 4` must take the exact
    /// sequential code path rather than paying spawn + contention for
    /// nothing — and to the batch size.
    fn effective_workers(&self, n: usize) -> usize {
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.threads.min(host).min(n)
    }

    /// Run a batch of join jobs, possibly on worker threads, returning
    /// match lists **indexed by job**. Workers only read the grounder
    /// (joins never intern), and results are reassembled by job index,
    /// so the outcome — including which error surfaces first — is
    /// independent of the thread count and of scheduling.
    ///
    /// Scheduling is segment-shaped: workers claim contiguous *chunks*
    /// of the job array instead of one job per atomic operation, so a
    /// round over a large fact segment costs a handful of atomic ops
    /// rather than one per rule instantiation. Small batches run inline
    /// (see [`Grounder::MIN_PARALLEL_BATCH`]).
    fn run_batch(&self, jobs: &[JoinJob<'_>]) -> Result<Vec<Vec<Match>>> {
        let n = jobs.len();
        let workers = self.effective_workers(n);
        if workers <= 1 || n < Self::MIN_PARALLEL_BATCH {
            return jobs.iter().map(|j| self.run_job(j)).collect();
        }
        // Coarse chunks (≈4 claims per worker) keep claiming overhead
        // negligible while still load-balancing skewed segments.
        let chunk = (n / (workers * 4)).max(1);
        let next = AtomicUsize::new(0);
        let mut buckets: Vec<Vec<(usize, Result<Vec<Match>>)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let lo = next.fetch_add(chunk, AtomicOrdering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + chunk).min(n);
                            for (i, job) in jobs[lo..hi].iter().enumerate() {
                                mine.push((lo + i, self.run_job(job)));
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                buckets.push(h.join().expect("grounder join worker panicked"));
            }
        });
        let mut slots: Vec<Option<Result<Vec<Match>>>> = (0..n).map(|_| None).collect();
        for (i, r) in buckets.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job index claimed exactly once"))
            .collect()
    }

    fn intern_under(&mut self, s: &Subst, a: &Atom) -> Result<AtomId> {
        let mut args = Vec::with_capacity(a.args.len());
        for t in &a.args {
            args.push(resolve(&mut self.store, s, t).ok_or_else(|| {
                AspError::Internal(format!("non-ground term {t} at instantiation"))
            })?);
        }
        Ok(self.store.atom(a.pred, args.into()))
    }
}

/// Ground `program` into a propositional [`GroundProgram`].
pub fn ground(program: &Program) -> Result<GroundProgram> {
    ground_parallel(program, GroundLimits::default(), 1)
}

/// Ground with explicit resource limits (single-threaded).
pub fn ground_with_limits(program: &Program, limits: GroundLimits) -> Result<GroundProgram> {
    ground_parallel(program, limits, 1)
}

/// Ground with explicit resource limits and a join worker-thread count.
///
/// The result is **bit-identical** for every `threads` value: joins are
/// read-only and their matches are emitted by the single-threaded master
/// in work-item order, so atom/term numbering, rule order, and every
/// downstream model agree with the sequential path (see module docs).
pub fn ground_parallel(
    program: &Program,
    limits: GroundLimits,
    threads: usize,
) -> Result<GroundProgram> {
    for r in &program.rules {
        check_safety(r)?;
    }
    let plans = plan_rules(program);
    let min_plans: Vec<(JoinSpec, Vec<Atom>)> = program
        .minimize
        .iter()
        .map(|me| {
            let cond = normalize_body(&me.condition);
            (
                JoinSpec::new(cond.pos, cond.cmps, &FxHashSet::default()),
                cond.neg,
            )
        })
        .collect();
    let wanted = collect_wanted(&plans, &min_plans);
    let mut g = Grounder::new(limits, threads, wanted);
    let no_subst: Subst = Vec::new();

    // ---- Phase 1: possible-atom closure (semi-naive). ----
    // Round 0: derivations with no positive literals at all (plain facts,
    // and choice elements whose body and condition are both literal-free)
    // fire exactly once; everything else participates in the loop below.
    for rp in &plans {
        if !rp.body.pats.is_empty() {
            continue;
        }
        match &rp.head {
            HeadPlan::Atom(a) => {
                let job = JoinJob {
                    spec: &rp.body,
                    init: no_subst.clone(),
                    delta: None,
                };
                for m in g.run_job(&job)? {
                    let id = g.intern_under(&m.subst, a)?;
                    g.add_possible(id);
                }
            }
            HeadPlan::Choice { elements, .. } => {
                for el in elements {
                    if !el.closure.pats.is_empty() {
                        continue; // handled in the semi-naive loop
                    }
                    let job = JoinJob {
                        spec: &el.closure,
                        init: no_subst.clone(),
                        delta: None,
                    };
                    for m in g.run_job(&job)? {
                        let id = g.intern_under(&m.subst, el.atom)?;
                        g.add_possible(id);
                    }
                }
            }
            HeadPlan::Constraint => {}
        }
    }
    let mut prev_start = 0usize;
    loop {
        let prev_end = g.possible.len();
        if prev_start == prev_end {
            break;
        }
        // One job per (derivation target, delta literal), in rule →
        // element → position order. All joins in the round read the
        // round-start state (a match that additionally needs an atom
        // derived *this* round is found next round, when that atom is in
        // the delta window — the fixpoint is unchanged); the master then
        // interns heads in job order, so possible-atom ranks are the same
        // at every thread count.
        let mut jobs: Vec<JoinJob<'_>> = Vec::new();
        let mut targets: Vec<&Atom> = Vec::new();
        for rp in &plans {
            match &rp.head {
                HeadPlan::Atom(a) => {
                    for dpos in 0..rp.body.pats.len() {
                        jobs.push(JoinJob {
                            spec: &rp.body,
                            init: no_subst.clone(),
                            delta: Some((dpos, prev_start, prev_end)),
                        });
                        targets.push(a);
                    }
                }
                HeadPlan::Choice { elements, .. } => {
                    for el in elements {
                        for dpos in 0..el.closure.pats.len() {
                            jobs.push(JoinJob {
                                spec: &el.closure,
                                init: no_subst.clone(),
                                delta: Some((dpos, prev_start, prev_end)),
                            });
                            targets.push(el.atom);
                        }
                    }
                }
                HeadPlan::Constraint => {}
            }
        }
        let results = g.run_batch(&jobs)?;
        for (ti, matches) in results.into_iter().enumerate() {
            for m in matches {
                let id = g.intern_under(&m.subst, targets[ti])?;
                g.add_possible(id);
            }
        }
        if g.possible.len() > g.limits.max_atoms {
            return Err(AspError::ResourceLimit(format!(
                "possible atoms exceeded {}",
                g.limits.max_atoms
            )));
        }
        prev_start = prev_end;
    }

    // ---- Phase 2: emit ground normal rules. ----
    // The closure is fixed now, so all emission joins run as one batch;
    // interning head/negative atoms cannot affect them (candidates come
    // only from the possible relations, which no longer change).
    let mut rules: Vec<GroundRule> = Vec::new();
    let mut rule_src: Vec<u32> = Vec::new();
    let mut rule_set: FxHashSet<GroundRule> = FxHashSet::default();
    {
        let mut jobs: Vec<JoinJob<'_>> = Vec::new();
        for rp in &plans {
            if matches!(rp.head, HeadPlan::Atom(_)) {
                jobs.push(JoinJob {
                    spec: &rp.body,
                    init: no_subst.clone(),
                    delta: None,
                });
            }
        }
        let mut results = g.run_batch(&jobs)?.into_iter();
        for (ri, rp) in plans.iter().enumerate() {
            let HeadPlan::Atom(head) = &rp.head else {
                continue;
            };
            let matches = results.next().expect("one result per normal rule");
            for m in matches {
                let Match { subst, chosen } = m;
                let h = g.intern_under(&subst, head)?;
                let mut neg = Vec::with_capacity(rp.neg.len());
                for n in &rp.neg {
                    neg.push(g.intern_under(&subst, n)?);
                }
                let gr = GroundRule {
                    head: h,
                    pos: chosen.into(),
                    neg: neg.into(),
                };
                if rule_set.insert(gr.clone()) {
                    rules.push(gr);
                    rule_src.push(ri as u32);
                }
                if rules.len() > g.limits.max_rules {
                    return Err(AspError::ResourceLimit(format!(
                        "ground rules exceeded {}",
                        g.limits.max_rules
                    )));
                }
            }
        }
    }

    // ---- Phase 3: certainty closure over negation-free rules. ----
    let mut certain: FxHashSet<AtomId> = FxHashSet::default();
    {
        // Index rules by their positive-body atoms.
        let mut waiting: FxHashMap<AtomId, Vec<usize>> = FxHashMap::default();
        let mut missing: Vec<usize> = Vec::with_capacity(rules.len());
        let mut queue: Vec<AtomId> = Vec::new();
        for (ri, r) in rules.iter().enumerate() {
            if !r.neg.is_empty() {
                missing.push(usize::MAX); // never participates
                continue;
            }
            missing.push(r.pos.len());
            if r.pos.is_empty() {
                if certain.insert(r.head) {
                    queue.push(r.head);
                }
            } else {
                for &p in r.pos.iter() {
                    waiting.entry(p).or_default().push(ri);
                }
            }
        }
        // Note: duplicate atoms in a body would double-count `missing`;
        // bodies come from joins so duplicates are possible when the same
        // atom matches two literals. Count unique occurrences instead.
        for (ri, r) in rules.iter().enumerate() {
            if r.neg.is_empty() && !r.pos.is_empty() {
                let unique: FxHashSet<AtomId> = r.pos.iter().copied().collect();
                missing[ri] = unique.len();
            }
        }
        let mut satisfied: FxHashMap<usize, FxHashSet<AtomId>> = FxHashMap::default();
        while let Some(a) = queue.pop() {
            if let Some(rids) = waiting.get(&a) {
                for &ri in rids {
                    if missing[ri] == usize::MAX {
                        continue;
                    }
                    let seen = satisfied.entry(ri).or_default();
                    if seen.insert(a) && seen.len() == missing[ri] {
                        let h = rules[ri].head;
                        if certain.insert(h) {
                            queue.push(h);
                        }
                    }
                }
            }
        }
    }

    // ---- Phase 4: choices, constraints, minimize. ----
    // Batch A: outer body joins for every choice rule and constraint
    // (rule order), then every minimize condition. Batch B: the
    // choice-element condition joins, each seeded with an outer match's
    // bindings, in (rule, match, element) order. Both batches are
    // read-only; the master then replays results in the original
    // sequential emission order.
    let mut outer: Vec<Vec<Match>>;
    let min_results: Vec<Vec<Match>>;
    {
        let mut jobs: Vec<JoinJob<'_>> = Vec::new();
        for rp in &plans {
            if matches!(rp.head, HeadPlan::Choice { .. } | HeadPlan::Constraint) {
                jobs.push(JoinJob {
                    spec: &rp.body,
                    init: no_subst.clone(),
                    delta: None,
                });
            }
        }
        let min_start = jobs.len();
        for (spec, _) in &min_plans {
            jobs.push(JoinJob {
                spec,
                init: no_subst.clone(),
                delta: None,
            });
        }
        outer = g.run_batch(&jobs)?;
        min_results = outer.split_off(min_start);
    }
    let mut cond_results: Vec<Vec<Match>>;
    {
        let mut cond_jobs: Vec<JoinJob<'_>> = Vec::new();
        let mut oi = 0usize;
        for rp in &plans {
            match &rp.head {
                HeadPlan::Choice { elements, .. } => {
                    for m in &outer[oi] {
                        for el in elements {
                            cond_jobs.push(JoinJob {
                                spec: &el.cond,
                                init: m.subst.clone(),
                                delta: None,
                            });
                        }
                    }
                    oi += 1;
                }
                HeadPlan::Constraint => oi += 1,
                HeadPlan::Atom(_) => {}
            }
        }
        cond_results = g.run_batch(&cond_jobs)?;
    }

    let mut choices: Vec<GroundChoice> = Vec::new();
    let mut choice_src: Vec<u32> = Vec::new();
    let mut choice_set: FxHashSet<GroundChoice> = FxHashSet::default();
    let mut constraints: Vec<GroundConstraint> = Vec::new();
    let mut constraint_src: Vec<u32> = Vec::new();
    let mut constraint_set: FxHashSet<GroundConstraint> = FxHashSet::default();
    let mut oi = 0usize;
    let mut ci = 0usize;
    for (ri, rp) in plans.iter().enumerate() {
        match &rp.head {
            HeadPlan::Choice {
                lower,
                upper,
                elements,
            } => {
                let matches = std::mem::take(&mut outer[oi]);
                oi += 1;
                for m in matches {
                    let Match { subst, chosen } = m;
                    let mut neg = Vec::with_capacity(rp.neg.len());
                    for n in &rp.neg {
                        neg.push(g.intern_under(&subst, n)?);
                    }
                    let mut elems: Vec<AtomId> = Vec::new();
                    let mut elem_seen: FxHashSet<AtomId> = FxHashSet::default();
                    for el in elements {
                        let cond_matches = std::mem::take(&mut cond_results[ci]);
                        ci += 1;
                        for cm in cond_matches {
                            // Conditions must be certain (domain predicates).
                            for &c in &cm.chosen {
                                if !certain.contains(&c) {
                                    return Err(AspError::NonDomainCondition {
                                        atom: g.store.format_atom(c),
                                        rule: program.rules[ri].to_string(),
                                    });
                                }
                            }
                            for n in &el.cond_neg {
                                let nid = g.intern_under(&cm.subst, n)?;
                                if g.is_possible(nid) {
                                    return Err(AspError::DerivableNegatedCondition {
                                        atom: g.store.format_atom(nid),
                                        rule: program.rules[ri].to_string(),
                                    });
                                }
                            }
                            let e = g.intern_under(&cm.subst, el.atom)?;
                            if elem_seen.insert(e) {
                                elems.push(e);
                            }
                        }
                    }
                    let gc = GroundChoice {
                        lower: *lower,
                        upper: *upper,
                        pos: chosen.into(),
                        neg: neg.into(),
                        elements: elems.into(),
                    };
                    if choice_set.insert(gc.clone()) {
                        choices.push(gc);
                        choice_src.push(ri as u32);
                    }
                }
            }
            HeadPlan::Constraint => {
                let matches = std::mem::take(&mut outer[oi]);
                oi += 1;
                for m in matches {
                    let Match { subst, chosen } = m;
                    let mut neg = Vec::with_capacity(rp.neg.len());
                    for n in &rp.neg {
                        neg.push(g.intern_under(&subst, n)?);
                    }
                    let gc = GroundConstraint {
                        pos: chosen.into(),
                        neg: neg.into(),
                    };
                    if constraint_set.insert(gc.clone()) {
                        constraints.push(gc);
                        constraint_src.push(ri as u32);
                    }
                }
            }
            HeadPlan::Atom(_) => {}
        }
    }

    let mut minimize: Vec<GroundMin> = Vec::new();
    let mut min_set: FxHashSet<GroundMin> = FxHashSet::default();
    for ((me, (_, cond_neg)), matches) in program
        .minimize
        .iter()
        .zip(&min_plans)
        .zip(min_results)
    {
        for m in matches {
            let Match { subst, chosen } = m;
            let w = resolve_int(&mut g, &subst, &me.weight)?;
            if w < 0 {
                return Err(AspError::BadWeight(format!(
                    "negative #minimize weight {w} is not supported by this engine"
                )));
            }
            let p = resolve_int(&mut g, &subst, &me.priority)?;
            let mut tuple = Vec::with_capacity(me.terms.len());
            for t in &me.terms {
                tuple.push(resolve(&mut g.store, &subst, t).ok_or_else(|| {
                    AspError::Internal(format!("non-ground minimize tuple term {t}"))
                })?);
            }
            let mut neg = Vec::with_capacity(cond_neg.len());
            for n in cond_neg {
                neg.push(g.intern_under(&subst, n)?);
            }
            let gm = GroundMin {
                weight: w,
                priority: p,
                tuple: tuple.into(),
                pos: chosen.into(),
                neg: neg.into(),
            };
            if min_set.insert(gm.clone()) {
                minimize.push(gm);
            }
        }
    }

    let possible: FxHashSet<AtomId> = g.possible.iter().copied().collect();
    Ok(GroundProgram {
        store: g.store,
        rules,
        choices,
        constraints,
        minimize,
        rule_src,
        choice_src,
        constraint_src,
        certain,
        possible,
    })
}

fn resolve_int(g: &mut Grounder, s: &Subst, t: &Term) -> Result<i64> {
    let tid = resolve(&mut g.store, s, t)
        .ok_or_else(|| AspError::Internal(format!("non-ground weight/priority term {t}")))?;
    match g.store.term_data(tid) {
        GroundTerm::Int(i) => Ok(*i),
        other => Err(AspError::BadWeight(format!(
            "weight/priority must be an integer, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn ground_text(text: &str) -> GroundProgram {
        ground(&parse_program(text).unwrap()).unwrap()
    }

    fn atom_strings(gp: &GroundProgram, of: &FxHashSet<AtomId>) -> Vec<String> {
        let mut v: Vec<String> = of.iter().map(|&a| gp.store.format_atom(a)).collect();
        v.sort();
        v
    }

    #[test]
    fn facts_are_certain_and_possible() {
        let gp = ground_text(r#"a. b("x"). b("y")."#);
        assert_eq!(gp.rules.len(), 3);
        assert_eq!(gp.certain.len(), 3);
        assert_eq!(gp.possible.len(), 3);
    }

    #[test]
    fn transitive_closure_grounding() {
        let gp = ground_text(
            r#"
            edge(1,2). edge(2,3). edge(3,4).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- path(X,Y), edge(Y,Z).
        "#,
        );
        // paths: (1,2),(2,3),(3,4),(1,3),(2,4),(1,4) = 6; edges 3.
        assert_eq!(gp.possible.len(), 9);
        assert_eq!(gp.certain.len(), 9);
    }

    #[test]
    fn comparisons_filter_instantiations() {
        let gp = ground_text(
            r#"
            n(1). n(2). n(3).
            lt(X,Y) :- n(X), n(Y), X < Y.
        "#,
        );
        let lts = atom_strings(&gp, &gp.possible);
        assert!(lts.contains(&"lt(1,2)".to_string()));
        assert!(lts.contains(&"lt(1,3)".to_string()));
        assert!(lts.contains(&"lt(2,3)".to_string()));
        assert!(!lts.contains(&"lt(2,1)".to_string()));
        assert_eq!(gp.possible.len(), 6);
    }

    #[test]
    fn negation_is_overapproximated_but_recorded() {
        let gp = ground_text(
            r#"
            a. c.
            b :- a, not c.
        "#,
        );
        // b is possible (negation ignored in closure) and the ground rule
        // records the negative literal.
        let has_b_rule = gp
            .rules
            .iter()
            .any(|r| gp.store.format_atom(r.head) == "b" && r.neg.len() == 1);
        assert!(has_b_rule);
        // But b is NOT certain (its rule has negation).
        let b_atoms = atom_strings(&gp, &gp.certain);
        assert!(!b_atoms.contains(&"b".to_string()));
    }

    #[test]
    fn choice_grounding_expands_elements() {
        let gp = ground_text(
            r#"
            node("example").
            cand("example","1.0").
            cand("example","1.1").
            1 { pick(N,V) : cand(N,V) } 1 :- node(N).
        "#,
        );
        assert_eq!(gp.choices.len(), 1);
        let c = &gp.choices[0];
        assert_eq!(c.elements.len(), 2);
        assert_eq!((c.lower, c.upper), (Some(1), Some(1)));
    }

    #[test]
    fn choice_condition_on_derived_certain_predicate_ok() {
        // cand2 is derived (negation-free) from facts: still a valid
        // domain predicate for conditions.
        let gp = ground_text(
            r#"
            raw("a"). raw("b").
            cand2(X) :- raw(X).
            { pick(X) : cand2(X) }.
        "#,
        );
        assert_eq!(gp.choices.len(), 1);
        assert_eq!(gp.choices[0].elements.len(), 2);
    }

    #[test]
    fn choice_condition_on_model_dependent_predicate_errors() {
        let prog = parse_program(
            r#"
            f("a").
            { q(X) : f(X) }.
            w(X) :- q(X).
            { pick(X) : w(X) }.
        "#,
        )
        .unwrap();
        match ground(&prog).err() {
            Some(AspError::NonDomainCondition { atom, rule }) => {
                assert_eq!(atom, "w(\"a\")");
                assert!(rule.contains("pick(X)"), "rule context: {rule}");
            }
            other => panic!("expected NonDomainCondition, got {other:?}"),
        }
    }

    #[test]
    fn derivable_negated_choice_condition_errors() {
        let prog = parse_program(
            r#"
            f("a").
            { q(X) : f(X) }.
            { pick(X) : f(X), not q(X) }.
        "#,
        )
        .unwrap();
        match ground(&prog).err() {
            Some(AspError::DerivableNegatedCondition { atom, rule }) => {
                assert_eq!(atom, "q(\"a\")");
                assert!(rule.contains("pick(X)"), "rule context: {rule}");
            }
            other => panic!("expected DerivableNegatedCondition, got {other:?}"),
        }
    }

    #[test]
    fn negative_minimize_weight_errors() {
        let prog = parse_program("a. #minimize { -1@1 : a }.").unwrap();
        match ground(&prog).err() {
            Some(AspError::BadWeight(msg)) => assert!(msg.contains("-1"), "{msg}"),
            other => panic!("expected BadWeight, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_minimize_weight_errors() {
        let prog = parse_program(r#"w("x"). #minimize { W@1,W : w(W) }."#).unwrap();
        match ground(&prog).err() {
            Some(AspError::BadWeight(msg)) => assert!(msg.contains("integer"), "{msg}"),
            other => panic!("expected BadWeight, got {other:?}"),
        }
    }

    #[test]
    fn unsafe_variables_reports_all_occurrences() {
        let prog = parse_program("p(X,Z) :- q(X), not r(Y), X < W.").unwrap();
        let unsafe_vars = unsafe_variables(&prog.rules[0]);
        let got: Vec<(String, SafetyContext)> = unsafe_vars
            .iter()
            .map(|u| (u.variable.as_str().to_string(), u.context))
            .collect();
        assert_eq!(
            got,
            vec![
                ("Y".to_string(), SafetyContext::NegativeLiteral),
                ("W".to_string(), SafetyContext::Comparison),
                ("Z".to_string(), SafetyContext::Head),
            ]
        );
        // Safe rules report nothing.
        let ok = parse_program("p(X) :- q(X).").unwrap();
        assert!(unsafe_variables(&ok.rules[0]).is_empty());
    }

    #[test]
    fn constraints_ground() {
        let gp = ground_text(
            r#"
            a(1). a(2).
            { p(X) : a(X) }.
            :- p(1), p(2).
        "#,
        );
        assert_eq!(gp.constraints.len(), 1);
        assert_eq!(gp.constraints[0].pos.len(), 2);
    }

    #[test]
    fn minimize_grounds_per_tuple() {
        let gp = ground_text(
            r#"
            a(1). a(2). a(3).
            { p(X) : a(X) }.
            #minimize { 100@2,X : p(X) }.
        "#,
        );
        assert_eq!(gp.minimize.len(), 3);
        assert!(gp.minimize.iter().all(|m| m.weight == 100 && m.priority == 2));
    }

    #[test]
    fn unsafe_rules_rejected() {
        for text in [
            "p(X).",                       // unbound head var
            "p(X) :- not q(X).",           // var only in negation
            "p :- q(X), X != Y.",          // Y unbound
            "{ p(X) : q(Y) } :- r(Z).",    // X unbound anywhere
        ] {
            let prog = parse_program(text).unwrap();
            assert!(
                matches!(ground(&prog), Err(AspError::Unsafe { .. })),
                "{text} should be unsafe"
            );
        }
    }

    #[test]
    fn functional_terms_join() {
        let gp = ground_text(
            r#"
            attr("version", node("a"), "1.0").
            attr("version", node("b"), "2.0").
            has_version(N) :- attr("version", node(N), V).
        "#,
        );
        let atoms = atom_strings(&gp, &gp.possible);
        assert!(atoms.contains(&"has_version(\"a\")".to_string()));
        assert!(atoms.contains(&"has_version(\"b\")".to_string()));
    }

    #[test]
    fn deep_chain_grounds_in_rounds() {
        // s(0), s(i+1) :- s(i), step(i, i+1) with 50 steps: exercises the
        // semi-naive loop over many rounds.
        let mut text = String::from("s(0).\n");
        for i in 0..50 {
            text.push_str(&format!("step({},{}).\n", i, i + 1));
        }
        text.push_str("s(Y) :- s(X), step(X,Y).\n");
        let gp = ground_text(&text);
        let atoms = atom_strings(&gp, &gp.certain);
        assert!(atoms.contains(&"s(50)".to_string()));
    }

    #[test]
    fn duplicate_facts_dedupe() {
        let gp = ground_text("a. a. a.");
        assert_eq!(gp.rules.len(), 1);
    }

    #[test]
    fn parallel_grounding_is_bit_identical() {
        // The whole determinism argument in one assertion: every ground
        // structure — and the atom/term *numbering* — matches the
        // sequential path at any thread count.
        let text = r#"
            edge(1,2). edge(2,3). edge(3,4). edge(4,5).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- path(X,Y), edge(Y,Z).
            n(X) :- edge(X,Y).
            n(Y) :- edge(X,Y).
            { pick(X) : n(X) } 2.
            reach(X) :- pick(X).
            reach(Y) :- reach(X), path(X,Y).
            :- pick(X), pick(Y), X < Y, path(Y,X).
            #minimize { 1@1,X : pick(X) }.
        "#;
        let prog = parse_program(text).unwrap();
        let seq = ground_parallel(&prog, GroundLimits::default(), 1).unwrap();
        for threads in [2usize, 8] {
            let par = ground_parallel(&prog, GroundLimits::default(), threads).unwrap();
            assert_eq!(seq.rules, par.rules, "rules differ at {threads} threads");
            assert_eq!(seq.choices, par.choices);
            assert_eq!(seq.constraints, par.constraints);
            assert_eq!(seq.minimize, par.minimize);
            assert_eq!(seq.certain, par.certain);
            assert_eq!(seq.possible, par.possible);
            assert_eq!(seq.store.atom_count(), par.store.atom_count());
            for a in &seq.possible {
                assert_eq!(seq.store.format_atom(*a), par.store.format_atom(*a));
            }
        }
    }
}
