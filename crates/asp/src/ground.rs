//! The grounder: instantiates a [`Program`]'s rules over an
//! over-approximated Herbrand base, producing a propositional
//! [`GroundProgram`] for the CNF translator.
//!
//! ## Algorithm
//!
//! 1. **Possible-atom closure** (semi-naive): starting from facts, derive
//!    every atom that *could* be true — heads of normal rules and choice
//!    elements — by joining positive bodies against the growing set.
//!    Negative literals are ignored (over-approximation); comparison
//!    builtins are evaluated (they are deterministic).
//! 2. **Emission pass**: with the closure fixed, instantiate every normal
//!    rule once more and emit ground rules, deduplicated.
//! 3. **Certainty closure**: atoms derivable through negation-free rules
//!    from facts are *certain*.
//! 4. **Choice/constraint/minimize emission**: choice-element conditions
//!    must be certain — this engine (like the concretizer program it
//!    serves) treats them as domain predicates; a condition over a
//!    genuinely model-dependent predicate is an error rather than a
//!    silent mis-solve. Minimize conditions stay model-dependent.
//!
//! Joins are index-backed: per (predicate, arity) relations with lazily
//! built per-argument-position hash indexes, so fact bases with many
//! thousands of `hash_attr` entries ground quickly.

use crate::program::{BodyElem, CmpOp, Head, Program, Rule};
use crate::term::{Atom, AtomId, GroundStore, GroundTerm, Term, TermId};
use crate::{AspError, Result};
use rustc_hash::{FxHashMap, FxHashSet};
use spackle_spec::Sym;
use std::cmp::Ordering;

/// A ground normal rule (`head :- pos, not neg`). Facts have empty bodies.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundRule {
    /// Head atom.
    pub head: AtomId,
    /// Positive body atoms.
    pub pos: Box<[AtomId]>,
    /// Negated body atoms.
    pub neg: Box<[AtomId]>,
}

/// A ground choice instance.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundChoice {
    /// Cardinality lower bound (enforced when the body holds).
    pub lower: Option<u32>,
    /// Cardinality upper bound (enforced when the body holds).
    pub upper: Option<u32>,
    /// Positive body atoms.
    pub pos: Box<[AtomId]>,
    /// Negated body atoms.
    pub neg: Box<[AtomId]>,
    /// Choosable element atoms (deduplicated, in derivation order).
    pub elements: Box<[AtomId]>,
}

/// A ground integrity constraint (`:- pos, not neg`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundConstraint {
    /// Positive body atoms.
    pub pos: Box<[AtomId]>,
    /// Negated body atoms.
    pub neg: Box<[AtomId]>,
}

/// A ground minimize term: contributes `weight` at `priority` when its
/// condition holds. Distinct `tuple`s contribute independently; identical
/// tuples with multiple conditions contribute once if *any* condition
/// holds (Clingo set-of-tuples semantics).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundMin {
    /// Weight (must be non-negative in this engine).
    pub weight: i64,
    /// Priority level; higher optimizes first.
    pub priority: i64,
    /// Distinguishing tuple.
    pub tuple: Box<[TermId]>,
    /// Positive condition atoms.
    pub pos: Box<[AtomId]>,
    /// Negated condition atoms.
    pub neg: Box<[AtomId]>,
}

/// The grounded program.
pub struct GroundProgram {
    /// Hash-cons store for ground terms/atoms.
    pub store: GroundStore,
    /// Ground normal rules, including facts.
    pub rules: Vec<GroundRule>,
    /// Ground choice instances.
    pub choices: Vec<GroundChoice>,
    /// Ground integrity constraints.
    pub constraints: Vec<GroundConstraint>,
    /// Ground minimize terms.
    pub minimize: Vec<GroundMin>,
    /// Atoms certain to hold in every model (facts plus negation-free
    /// consequences of facts).
    pub certain: FxHashSet<AtomId>,
    /// Atoms that can possibly be true (the over-approximated base).
    pub possible: FxHashSet<AtomId>,
}

impl GroundProgram {
    /// Total number of interned atoms (the propositional universe).
    pub fn atom_count(&self) -> usize {
        self.store.atom_count()
    }
}

/// Resource limits for grounding.
#[derive(Clone, Copy, Debug)]
pub struct GroundLimits {
    /// Maximum number of distinct possible atoms before aborting.
    pub max_atoms: usize,
    /// Maximum number of emitted ground rules before aborting.
    pub max_rules: usize,
}

impl Default for GroundLimits {
    fn default() -> Self {
        GroundLimits {
            max_atoms: 20_000_000,
            max_rules: 50_000_000,
        }
    }
}

// ---------------------------------------------------------------------
// Normalized rules and safety
// ---------------------------------------------------------------------

#[derive(Clone)]
struct NormBody {
    pos: Vec<Atom>,
    neg: Vec<Atom>,
    cmps: Vec<(Term, CmpOp, Term)>,
}

fn normalize_body(body: &[BodyElem]) -> NormBody {
    let mut nb = NormBody {
        pos: Vec::new(),
        neg: Vec::new(),
        cmps: Vec::new(),
    };
    for e in body {
        match e {
            BodyElem::Pos(a) => nb.pos.push(a.clone()),
            BodyElem::Neg(a) => nb.neg.push(a.clone()),
            BodyElem::Cmp(l, op, r) => nb.cmps.push((l.clone(), *op, r.clone())),
        }
    }
    nb
}

/// Where an unsafe variable was found within a rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SafetyContext {
    /// In a negated body literal.
    NegativeLiteral,
    /// In a comparison builtin.
    Comparison,
    /// In the head atom.
    Head,
    /// In a choice-element atom.
    ChoiceElement,
    /// In a negated literal of a choice-element condition.
    ChoiceConditionNegation,
    /// In a comparison of a choice-element condition.
    ChoiceConditionComparison,
}

impl std::fmt::Display for SafetyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SafetyContext::NegativeLiteral => "negative literal",
            SafetyContext::Comparison => "comparison",
            SafetyContext::Head => "head",
            SafetyContext::ChoiceElement => "choice element",
            SafetyContext::ChoiceConditionNegation => "choice condition negation",
            SafetyContext::ChoiceConditionComparison => "choice condition comparison",
        })
    }
}

/// An unsafe variable occurrence: a variable in a head, negated literal,
/// or comparison that no positive body literal binds.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeVariable {
    /// The unbound variable.
    pub variable: Sym,
    /// Where it occurred.
    pub context: SafetyContext,
}

/// All unsafe variable occurrences of `rule`, deduplicated, in
/// discovery order. Empty iff the rule is safe. The grounder rejects
/// unsafe rules; `spackle-audit` reports the same occurrences as
/// diagnostics with rule locations.
pub fn unsafe_variables(rule: &Rule) -> Vec<UnsafeVariable> {
    let nb = normalize_body(&rule.body);
    let mut bound: Vec<Sym> = Vec::new();
    for a in &nb.pos {
        a.collect_vars(&mut bound);
    }
    let mut out: Vec<UnsafeVariable> = Vec::new();
    let mut check = |vars: Vec<Sym>, extra: &[Sym], context: SafetyContext| {
        for v in vars {
            if !bound.contains(&v) && !extra.contains(&v) {
                let u = UnsafeVariable {
                    variable: v,
                    context,
                };
                if !out.contains(&u) {
                    out.push(u);
                }
            }
        }
    };
    for a in &nb.neg {
        let mut vs = Vec::new();
        a.collect_vars(&mut vs);
        check(vs, &[], SafetyContext::NegativeLiteral);
    }
    for (l, _, r) in &nb.cmps {
        let mut vs = Vec::new();
        l.collect_vars(&mut vs);
        r.collect_vars(&mut vs);
        check(vs, &[], SafetyContext::Comparison);
    }
    match &rule.head {
        Head::None => {}
        Head::Atom(a) => {
            let mut vs = Vec::new();
            a.collect_vars(&mut vs);
            check(vs, &[], SafetyContext::Head);
        }
        Head::Choice { elements, .. } => {
            for el in elements {
                let cond = normalize_body(&el.condition);
                let mut cond_vars: Vec<Sym> = Vec::new();
                for a in &cond.pos {
                    a.collect_vars(&mut cond_vars);
                }
                let mut vs = Vec::new();
                el.atom.collect_vars(&mut vs);
                check(vs, &cond_vars, SafetyContext::ChoiceElement);
                for a in &cond.neg {
                    let mut nvs = Vec::new();
                    a.collect_vars(&mut nvs);
                    check(nvs, &cond_vars, SafetyContext::ChoiceConditionNegation);
                }
                for (l, _, r) in &cond.cmps {
                    let mut cvs = Vec::new();
                    l.collect_vars(&mut cvs);
                    r.collect_vars(&mut cvs);
                    check(cvs, &cond_vars, SafetyContext::ChoiceConditionComparison);
                }
            }
        }
    }
    out
}

fn check_safety(rule: &Rule) -> Result<()> {
    match unsafe_variables(rule).into_iter().next() {
        None => Ok(()),
        Some(u) => Err(AspError::Unsafe {
            rule: format!("{rule} ({})", u.context),
            variable: u.variable.as_str().to_string(),
        }),
    }
}

// ---------------------------------------------------------------------
// Substitutions
// ---------------------------------------------------------------------

type Subst = Vec<(Sym, TermId)>;

fn lookup(s: &Subst, v: Sym) -> Option<TermId> {
    s.iter().rev().find(|(k, _)| *k == v).map(|(_, t)| *t)
}

/// Resolve `t` under `s` to a ground term id, interning as needed.
/// Returns `None` when an unbound variable remains.
fn resolve(store: &mut GroundStore, s: &Subst, t: &Term) -> Option<TermId> {
    match t {
        Term::Int(i) => Some(store.term(GroundTerm::Int(*i))),
        Term::Sym(x) => Some(store.term(GroundTerm::Sym(*x))),
        Term::Str(x) => Some(store.term(GroundTerm::Str(*x))),
        Term::Var(v) => lookup(s, *v),
        Term::Func(name, args) => {
            let mut kids = Vec::with_capacity(args.len());
            for a in args {
                kids.push(resolve(store, s, a)?);
            }
            Some(store.term(GroundTerm::Func(*name, kids.into())))
        }
    }
}

/// Unify pattern `t` with ground term `tid` under `s`, appending new
/// bindings. On mismatch returns false; caller truncates `s`.
fn unify(store: &GroundStore, s: &mut Subst, t: &Term, tid: TermId) -> bool {
    match t {
        Term::Int(i) => matches!(store.term_data(tid), GroundTerm::Int(j) if i == j),
        Term::Sym(x) => matches!(store.term_data(tid), GroundTerm::Sym(y) if x == y),
        Term::Str(x) => matches!(store.term_data(tid), GroundTerm::Str(y) if x == y),
        Term::Var(v) => match lookup(s, *v) {
            Some(existing) => existing == tid,
            None => {
                s.push((*v, tid));
                true
            }
        },
        Term::Func(name, args) => match store.term_data(tid) {
            GroundTerm::Func(n2, kids) if n2 == name && kids.len() == args.len() => {
                let kids: Vec<TermId> = kids.to_vec();
                args.iter()
                    .zip(kids)
                    .all(|(a, k)| unify(store, s, a, k))
            }
            _ => false,
        },
    }
}

// ---------------------------------------------------------------------
// The grounder
// ---------------------------------------------------------------------

#[derive(Default)]
struct PredRel {
    atoms: Vec<AtomId>,
    /// Lazily built index per argument position.
    by_arg: Vec<Option<FxHashMap<TermId, Vec<AtomId>>>>,
}

struct Grounder {
    store: GroundStore,
    rels: FxHashMap<(Sym, usize), PredRel>,
    /// Rank (possible-insertion order) per atom id; usize::MAX = not
    /// (yet) possible. Indexed by AtomId.0.
    rank_of: Vec<usize>,
    possible: Vec<AtomId>,
    limits: GroundLimits,
}

/// One complete instantiation of a body: the substitution and the chosen
/// positive atoms (in literal order).
struct Match {
    subst: Subst,
    chosen: Vec<AtomId>,
}

impl Grounder {
    fn new(limits: GroundLimits) -> Self {
        Grounder {
            store: GroundStore::new(),
            rels: FxHashMap::default(),
            rank_of: Vec::new(),
            possible: Vec::new(),
            limits,
        }
    }

    fn rank(&self, a: AtomId) -> usize {
        self.rank_of
            .get(a.0 as usize)
            .copied()
            .unwrap_or(usize::MAX)
    }

    fn is_possible(&self, a: AtomId) -> bool {
        self.rank(a) != usize::MAX
    }

    /// Mark `id` possible; returns true when newly added.
    fn add_possible(&mut self, id: AtomId) -> bool {
        if self.rank_of.len() <= id.0 as usize {
            self.rank_of.resize(id.0 as usize + 1, usize::MAX);
        }
        if self.rank_of[id.0 as usize] != usize::MAX {
            return false;
        }
        self.rank_of[id.0 as usize] = self.possible.len();
        self.possible.push(id);
        let (pred, args) = self.store.atom_data(id);
        let arity = args.len();
        let args_owned: Vec<TermId> = args.to_vec();
        let rel = self.rels.entry((pred, arity)).or_default();
        rel.atoms.push(id);
        for (i, slot) in rel.by_arg.iter_mut().enumerate() {
            if let Some(map) = slot {
                map.entry(args_owned[i]).or_default().push(id);
            }
        }
        true
    }

    /// Candidate atoms matching `pattern` under `s` with rank in
    /// `[lo, hi)`.
    fn candidates(&mut self, s: &Subst, pattern: &Atom, lo: usize, hi: usize) -> Vec<AtomId> {
        let key = (pattern.pred, pattern.args.len());
        if !self.rels.contains_key(&key) {
            return Vec::new();
        }
        // Prefer an index on an argument position that is ground under s.
        let mut ground_arg: Option<(usize, TermId)> = None;
        for (i, a) in pattern.args.iter().enumerate() {
            let mut vs = Vec::new();
            a.collect_vars(&mut vs);
            if vs.iter().all(|v| lookup(s, *v).is_some()) {
                if let Some(tid) = resolve(&mut self.store, s, a) {
                    ground_arg = Some((i, tid));
                    break;
                }
            }
        }
        let rel = self.rels.get_mut(&key).expect("checked above");
        let base: Vec<AtomId> = match ground_arg {
            Some((i, tid)) => {
                if rel.by_arg.len() <= i {
                    rel.by_arg.resize_with(i + 1, || None);
                }
                if rel.by_arg[i].is_none() {
                    let mut map: FxHashMap<TermId, Vec<AtomId>> = FxHashMap::default();
                    for &aid in &rel.atoms {
                        let (_, args) = self.store.atom_data(aid);
                        map.entry(args[i]).or_default().push(aid);
                    }
                    rel.by_arg[i] = Some(map);
                }
                rel.by_arg[i]
                    .as_ref()
                    .expect("just built")
                    .get(&tid)
                    .cloned()
                    .unwrap_or_default()
            }
            None => rel.atoms.clone(),
        };
        if lo == 0 && hi == usize::MAX {
            base
        } else {
            base.into_iter()
                .filter(|a| {
                    let r = self.rank(*a);
                    r >= lo && r < hi
                })
                .collect()
        }
    }

    /// Enumerate instantiations of `pats` (with `cmps` filters), starting
    /// from substitution `init`. When `delta` is `Some((i, lo, hi))`,
    /// literal `i` is restricted to atoms with rank in `[lo, hi)`.
    fn join(
        &mut self,
        pats: &[Atom],
        cmps: &[(Term, CmpOp, Term)],
        init: &Subst,
        init_chosen: &[AtomId],
        delta: Option<(usize, usize, usize)>,
    ) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        let mut s = init.to_vec();
        let mut chosen = init_chosen.to_vec();
        self.join_rec(pats, cmps, 0, delta, &mut s, &mut chosen, &mut out)?;
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn join_rec(
        &mut self,
        pats: &[Atom],
        cmps: &[(Term, CmpOp, Term)],
        i: usize,
        delta: Option<(usize, usize, usize)>,
        s: &mut Subst,
        chosen: &mut Vec<AtomId>,
        out: &mut Vec<Match>,
    ) -> Result<()> {
        if i == pats.len() {
            // All positive literals matched; evaluate comparisons.
            for (l, op, r) in cmps {
                let lv = resolve(&mut self.store, s, l).ok_or_else(|| {
                    AspError::Internal(format!("comparison lhs not ground: {l}"))
                })?;
                let rv = resolve(&mut self.store, s, r).ok_or_else(|| {
                    AspError::Internal(format!("comparison rhs not ground: {r}"))
                })?;
                let ord = self.store.compare(lv, rv);
                let hold = match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                };
                if !hold {
                    return Ok(());
                }
            }
            out.push(Match {
                subst: s.clone(),
                chosen: chosen.clone(),
            });
            return Ok(());
        }
        let (lo, hi) = match delta {
            Some((dpos, lo, hi)) if dpos == i => (lo, hi),
            _ => (0, usize::MAX),
        };
        let cands = self.candidates(s, &pats[i], lo, hi);
        for cand in cands {
            let mark = s.len();
            let (_, args) = self.store.atom_data(cand);
            let args: Vec<TermId> = args.to_vec();
            let ok = pats[i]
                .args
                .iter()
                .zip(&args)
                .all(|(p, &t)| unify(&self.store, s, p, t));
            if ok {
                chosen.push(cand);
                self.join_rec(pats, cmps, i + 1, delta, s, chosen, out)?;
                chosen.pop();
            }
            s.truncate(mark);
        }
        Ok(())
    }

    fn intern_under(&mut self, s: &Subst, a: &Atom) -> Result<AtomId> {
        let mut args = Vec::with_capacity(a.args.len());
        for t in &a.args {
            args.push(resolve(&mut self.store, s, t).ok_or_else(|| {
                AspError::Internal(format!("non-ground term {t} at instantiation"))
            })?);
        }
        Ok(self.store.atom(a.pred, args.into()))
    }
}

/// Ground `program` into a propositional [`GroundProgram`].
pub fn ground(program: &Program) -> Result<GroundProgram> {
    ground_with_limits(program, GroundLimits::default())
}

/// Ground with explicit resource limits.
pub fn ground_with_limits(program: &Program, limits: GroundLimits) -> Result<GroundProgram> {
    for r in &program.rules {
        check_safety(r)?;
    }
    let mut g = Grounder::new(limits);

    // Pre-normalize rules.
    struct NormRule<'a> {
        head: &'a Head,
        body: NormBody,
    }
    let norm: Vec<NormRule<'_>> = program
        .rules
        .iter()
        .map(|r| NormRule {
            head: &r.head,
            body: normalize_body(&r.body),
        })
        .collect();

    // ---- Phase 1: possible-atom closure (semi-naive). ----
    // Round 0: derivations with no positive literals at all (plain facts,
    // and choice elements whose body and condition are both literal-free)
    // fire exactly once; everything else participates in the loop below.
    for nr in &norm {
        if !nr.body.pos.is_empty() {
            continue;
        }
        match nr.head {
            Head::Atom(a) => {
                let matches = g.join(&[], &nr.body.cmps, &Vec::new(), &[], None)?;
                for m in matches {
                    let id = g.intern_under(&m.subst, a)?;
                    g.add_possible(id);
                }
            }
            Head::Choice { elements, .. } => {
                for el in elements {
                    let cond = normalize_body(&el.condition);
                    if !cond.pos.is_empty() {
                        continue; // handled in the semi-naive loop
                    }
                    let mut cmps = nr.body.cmps.clone();
                    cmps.extend(cond.cmps.iter().cloned());
                    let matches = g.join(&[], &cmps, &Vec::new(), &[], None)?;
                    for m in matches {
                        let id = g.intern_under(&m.subst, &el.atom)?;
                        g.add_possible(id);
                    }
                }
            }
            Head::None => {}
        }
    }
    let mut prev_start = 0usize;
    loop {
        let prev_end = g.possible.len();
        if prev_start == prev_end {
            break;
        }
        for nr in &norm {
            // Combined literal lists per derivation target: for normal
            // heads the body; for choice elements body + condition.
            match nr.head {
                Head::Choice { elements, .. } => {
                    for el in elements {
                        let cond = normalize_body(&el.condition);
                        let mut pats = nr.body.pos.clone();
                        pats.extend(cond.pos.iter().cloned());
                        if pats.is_empty() {
                            continue; // fired in round 0
                        }
                        let mut cmps = nr.body.cmps.clone();
                        cmps.extend(cond.cmps.iter().cloned());
                        for dpos in 0..pats.len() {
                            let matches = g.join(
                                &pats,
                                &cmps,
                                &Vec::new(),
                                &[],
                                Some((dpos, prev_start, prev_end)),
                            )?;
                            for m in matches {
                                let id = g.intern_under(&m.subst, &el.atom)?;
                                g.add_possible(id);
                            }
                        }
                    }
                }
                Head::Atom(a) => {
                    let npos = nr.body.pos.len();
                    if npos == 0 {
                        continue; // fired in round 0
                    }
                    for dpos in 0..npos {
                        let matches = g.join(
                            &nr.body.pos,
                            &nr.body.cmps,
                            &Vec::new(),
                            &[],
                            Some((dpos, prev_start, prev_end)),
                        )?;
                        for m in matches {
                            let id = g.intern_under(&m.subst, a)?;
                            g.add_possible(id);
                        }
                    }
                }
                Head::None => {}
            }
        }
        if g.possible.len() > g.limits.max_atoms {
            return Err(AspError::ResourceLimit(format!(
                "possible atoms exceeded {}",
                g.limits.max_atoms
            )));
        }
        prev_start = prev_end;
    }

    // ---- Phase 2: emit ground normal rules. ----
    let mut rules: Vec<GroundRule> = Vec::new();
    let mut rule_set: FxHashSet<GroundRule> = FxHashSet::default();
    for nr in &norm {
        let Head::Atom(head) = nr.head else { continue };
        let matches = g.join(&nr.body.pos, &nr.body.cmps, &Vec::new(), &[], None)?;
        for m in matches {
            let h = g.intern_under(&m.subst, head)?;
            let mut neg = Vec::with_capacity(nr.body.neg.len());
            for n in &nr.body.neg {
                neg.push(g.intern_under(&m.subst, n)?);
            }
            let gr = GroundRule {
                head: h,
                pos: m.chosen.clone().into(),
                neg: neg.into(),
            };
            if rule_set.insert(gr.clone()) {
                rules.push(gr);
            }
            if rules.len() > g.limits.max_rules {
                return Err(AspError::ResourceLimit(format!(
                    "ground rules exceeded {}",
                    g.limits.max_rules
                )));
            }
        }
    }

    // ---- Phase 3: certainty closure over negation-free rules. ----
    let mut certain: FxHashSet<AtomId> = FxHashSet::default();
    {
        // Index rules by their positive-body atoms.
        let mut waiting: FxHashMap<AtomId, Vec<usize>> = FxHashMap::default();
        let mut missing: Vec<usize> = Vec::with_capacity(rules.len());
        let mut queue: Vec<AtomId> = Vec::new();
        for (ri, r) in rules.iter().enumerate() {
            if !r.neg.is_empty() {
                missing.push(usize::MAX); // never participates
                continue;
            }
            missing.push(r.pos.len());
            if r.pos.is_empty() {
                if certain.insert(r.head) {
                    queue.push(r.head);
                }
            } else {
                for &p in r.pos.iter() {
                    waiting.entry(p).or_default().push(ri);
                }
            }
        }
        // Note: duplicate atoms in a body would double-count `missing`;
        // bodies come from joins so duplicates are possible when the same
        // atom matches two literals. Count unique occurrences instead.
        for (ri, r) in rules.iter().enumerate() {
            if r.neg.is_empty() && !r.pos.is_empty() {
                let unique: FxHashSet<AtomId> = r.pos.iter().copied().collect();
                missing[ri] = unique.len();
            }
        }
        let mut satisfied: FxHashMap<usize, FxHashSet<AtomId>> = FxHashMap::default();
        while let Some(a) = queue.pop() {
            if let Some(rids) = waiting.get(&a) {
                for &ri in rids {
                    if missing[ri] == usize::MAX {
                        continue;
                    }
                    let seen = satisfied.entry(ri).or_default();
                    if seen.insert(a) && seen.len() == missing[ri] {
                        let h = rules[ri].head;
                        if certain.insert(h) {
                            queue.push(h);
                        }
                    }
                }
            }
        }
    }

    // ---- Phase 4: choices, constraints, minimize. ----
    let mut choices: Vec<GroundChoice> = Vec::new();
    let mut choice_set: FxHashSet<GroundChoice> = FxHashSet::default();
    let mut constraints: Vec<GroundConstraint> = Vec::new();
    let mut constraint_set: FxHashSet<GroundConstraint> = FxHashSet::default();
    for (ri, nr) in norm.iter().enumerate() {
        match nr.head {
            Head::Choice {
                lower,
                upper,
                elements,
            } => {
                let matches = g.join(&nr.body.pos, &nr.body.cmps, &Vec::new(), &[], None)?;
                for m in matches {
                    let mut neg = Vec::with_capacity(nr.body.neg.len());
                    for n in &nr.body.neg {
                        neg.push(g.intern_under(&m.subst, n)?);
                    }
                    let mut elems: Vec<AtomId> = Vec::new();
                    let mut elem_seen: FxHashSet<AtomId> = FxHashSet::default();
                    for el in elements {
                        let cond = normalize_body(&el.condition);
                        let cond_matches =
                            g.join(&cond.pos, &cond.cmps, &m.subst, &[], None)?;
                        for cm in cond_matches {
                            // Conditions must be certain (domain predicates).
                            for &c in &cm.chosen {
                                if !certain.contains(&c) {
                                    return Err(AspError::NonDomainCondition {
                                        atom: g.store.format_atom(c),
                                        rule: program.rules[ri].to_string(),
                                    });
                                }
                            }
                            for n in &cond.neg {
                                let nid = g.intern_under(&cm.subst, n)?;
                                if g.is_possible(nid) {
                                    return Err(AspError::DerivableNegatedCondition {
                                        atom: g.store.format_atom(nid),
                                        rule: program.rules[ri].to_string(),
                                    });
                                }
                            }
                            let e = g.intern_under(&cm.subst, &el.atom)?;
                            if elem_seen.insert(e) {
                                elems.push(e);
                            }
                        }
                    }
                    let gc = GroundChoice {
                        lower: *lower,
                        upper: *upper,
                        pos: m.chosen.clone().into(),
                        neg: neg.into(),
                        elements: elems.into(),
                    };
                    if choice_set.insert(gc.clone()) {
                        choices.push(gc);
                    }
                }
            }
            Head::None => {
                let matches = g.join(&nr.body.pos, &nr.body.cmps, &Vec::new(), &[], None)?;
                for m in matches {
                    let mut neg = Vec::with_capacity(nr.body.neg.len());
                    for n in &nr.body.neg {
                        neg.push(g.intern_under(&m.subst, n)?);
                    }
                    let gc = GroundConstraint {
                        pos: m.chosen.clone().into(),
                        neg: neg.into(),
                    };
                    if constraint_set.insert(gc.clone()) {
                        constraints.push(gc);
                    }
                }
            }
            Head::Atom(_) => {}
        }
    }

    let mut minimize: Vec<GroundMin> = Vec::new();
    let mut min_set: FxHashSet<GroundMin> = FxHashSet::default();
    for me in &program.minimize {
        let cond = normalize_body(&me.condition);
        let matches = g.join(&cond.pos, &cond.cmps, &Vec::new(), &[], None)?;
        for m in matches {
            let w = resolve_int(&mut g, &m.subst, &me.weight)?;
            if w < 0 {
                return Err(AspError::BadWeight(format!(
                    "negative #minimize weight {w} is not supported by this engine"
                )));
            }
            let p = resolve_int(&mut g, &m.subst, &me.priority)?;
            let mut tuple = Vec::with_capacity(me.terms.len());
            for t in &me.terms {
                tuple.push(resolve(&mut g.store, &m.subst, t).ok_or_else(|| {
                    AspError::Internal(format!("non-ground minimize tuple term {t}"))
                })?);
            }
            let mut neg = Vec::with_capacity(cond.neg.len());
            for n in &cond.neg {
                neg.push(g.intern_under(&m.subst, n)?);
            }
            let gm = GroundMin {
                weight: w,
                priority: p,
                tuple: tuple.into(),
                pos: m.chosen.clone().into(),
                neg: neg.into(),
            };
            if min_set.insert(gm.clone()) {
                minimize.push(gm);
            }
        }
    }

    let possible: FxHashSet<AtomId> = g.possible.iter().copied().collect();
    Ok(GroundProgram {
        store: g.store,
        rules,
        choices,
        constraints,
        minimize,
        certain,
        possible,
    })
}

fn resolve_int(g: &mut Grounder, s: &Subst, t: &Term) -> Result<i64> {
    let tid = resolve(&mut g.store, s, t)
        .ok_or_else(|| AspError::Internal(format!("non-ground weight/priority term {t}")))?;
    match g.store.term_data(tid) {
        GroundTerm::Int(i) => Ok(*i),
        other => Err(AspError::BadWeight(format!(
            "weight/priority must be an integer, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn ground_text(text: &str) -> GroundProgram {
        ground(&parse_program(text).unwrap()).unwrap()
    }

    fn atom_strings(gp: &GroundProgram, of: &FxHashSet<AtomId>) -> Vec<String> {
        let mut v: Vec<String> = of.iter().map(|&a| gp.store.format_atom(a)).collect();
        v.sort();
        v
    }

    #[test]
    fn facts_are_certain_and_possible() {
        let gp = ground_text(r#"a. b("x"). b("y")."#);
        assert_eq!(gp.rules.len(), 3);
        assert_eq!(gp.certain.len(), 3);
        assert_eq!(gp.possible.len(), 3);
    }

    #[test]
    fn transitive_closure_grounding() {
        let gp = ground_text(
            r#"
            edge(1,2). edge(2,3). edge(3,4).
            path(X,Y) :- edge(X,Y).
            path(X,Z) :- path(X,Y), edge(Y,Z).
        "#,
        );
        // paths: (1,2),(2,3),(3,4),(1,3),(2,4),(1,4) = 6; edges 3.
        assert_eq!(gp.possible.len(), 9);
        assert_eq!(gp.certain.len(), 9);
    }

    #[test]
    fn comparisons_filter_instantiations() {
        let gp = ground_text(
            r#"
            n(1). n(2). n(3).
            lt(X,Y) :- n(X), n(Y), X < Y.
        "#,
        );
        let lts = atom_strings(&gp, &gp.possible);
        assert!(lts.contains(&"lt(1,2)".to_string()));
        assert!(lts.contains(&"lt(1,3)".to_string()));
        assert!(lts.contains(&"lt(2,3)".to_string()));
        assert!(!lts.contains(&"lt(2,1)".to_string()));
        assert_eq!(gp.possible.len(), 6);
    }

    #[test]
    fn negation_is_overapproximated_but_recorded() {
        let gp = ground_text(
            r#"
            a. c.
            b :- a, not c.
        "#,
        );
        // b is possible (negation ignored in closure) and the ground rule
        // records the negative literal.
        let has_b_rule = gp
            .rules
            .iter()
            .any(|r| gp.store.format_atom(r.head) == "b" && r.neg.len() == 1);
        assert!(has_b_rule);
        // But b is NOT certain (its rule has negation).
        let b_atoms = atom_strings(&gp, &gp.certain);
        assert!(!b_atoms.contains(&"b".to_string()));
    }

    #[test]
    fn choice_grounding_expands_elements() {
        let gp = ground_text(
            r#"
            node("example").
            cand("example","1.0").
            cand("example","1.1").
            1 { pick(N,V) : cand(N,V) } 1 :- node(N).
        "#,
        );
        assert_eq!(gp.choices.len(), 1);
        let c = &gp.choices[0];
        assert_eq!(c.elements.len(), 2);
        assert_eq!((c.lower, c.upper), (Some(1), Some(1)));
    }

    #[test]
    fn choice_condition_on_derived_certain_predicate_ok() {
        // cand2 is derived (negation-free) from facts: still a valid
        // domain predicate for conditions.
        let gp = ground_text(
            r#"
            raw("a"). raw("b").
            cand2(X) :- raw(X).
            { pick(X) : cand2(X) }.
        "#,
        );
        assert_eq!(gp.choices.len(), 1);
        assert_eq!(gp.choices[0].elements.len(), 2);
    }

    #[test]
    fn choice_condition_on_model_dependent_predicate_errors() {
        let prog = parse_program(
            r#"
            f("a").
            { q(X) : f(X) }.
            w(X) :- q(X).
            { pick(X) : w(X) }.
        "#,
        )
        .unwrap();
        match ground(&prog).err() {
            Some(AspError::NonDomainCondition { atom, rule }) => {
                assert_eq!(atom, "w(\"a\")");
                assert!(rule.contains("pick(X)"), "rule context: {rule}");
            }
            other => panic!("expected NonDomainCondition, got {other:?}"),
        }
    }

    #[test]
    fn derivable_negated_choice_condition_errors() {
        let prog = parse_program(
            r#"
            f("a").
            { q(X) : f(X) }.
            { pick(X) : f(X), not q(X) }.
        "#,
        )
        .unwrap();
        match ground(&prog).err() {
            Some(AspError::DerivableNegatedCondition { atom, rule }) => {
                assert_eq!(atom, "q(\"a\")");
                assert!(rule.contains("pick(X)"), "rule context: {rule}");
            }
            other => panic!("expected DerivableNegatedCondition, got {other:?}"),
        }
    }

    #[test]
    fn negative_minimize_weight_errors() {
        let prog = parse_program("a. #minimize { -1@1 : a }.").unwrap();
        match ground(&prog).err() {
            Some(AspError::BadWeight(msg)) => assert!(msg.contains("-1"), "{msg}"),
            other => panic!("expected BadWeight, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_minimize_weight_errors() {
        let prog = parse_program(r#"w("x"). #minimize { W@1,W : w(W) }."#).unwrap();
        match ground(&prog).err() {
            Some(AspError::BadWeight(msg)) => assert!(msg.contains("integer"), "{msg}"),
            other => panic!("expected BadWeight, got {other:?}"),
        }
    }

    #[test]
    fn unsafe_variables_reports_all_occurrences() {
        let prog = parse_program("p(X,Z) :- q(X), not r(Y), X < W.").unwrap();
        let unsafe_vars = unsafe_variables(&prog.rules[0]);
        let got: Vec<(String, SafetyContext)> = unsafe_vars
            .iter()
            .map(|u| (u.variable.as_str().to_string(), u.context))
            .collect();
        assert_eq!(
            got,
            vec![
                ("Y".to_string(), SafetyContext::NegativeLiteral),
                ("W".to_string(), SafetyContext::Comparison),
                ("Z".to_string(), SafetyContext::Head),
            ]
        );
        // Safe rules report nothing.
        let ok = parse_program("p(X) :- q(X).").unwrap();
        assert!(unsafe_variables(&ok.rules[0]).is_empty());
    }

    #[test]
    fn constraints_ground() {
        let gp = ground_text(
            r#"
            a(1). a(2).
            { p(X) : a(X) }.
            :- p(1), p(2).
        "#,
        );
        assert_eq!(gp.constraints.len(), 1);
        assert_eq!(gp.constraints[0].pos.len(), 2);
    }

    #[test]
    fn minimize_grounds_per_tuple() {
        let gp = ground_text(
            r#"
            a(1). a(2). a(3).
            { p(X) : a(X) }.
            #minimize { 100@2,X : p(X) }.
        "#,
        );
        assert_eq!(gp.minimize.len(), 3);
        assert!(gp.minimize.iter().all(|m| m.weight == 100 && m.priority == 2));
    }

    #[test]
    fn unsafe_rules_rejected() {
        for text in [
            "p(X).",                       // unbound head var
            "p(X) :- not q(X).",           // var only in negation
            "p :- q(X), X != Y.",          // Y unbound
            "{ p(X) : q(Y) } :- r(Z).",    // X unbound anywhere
        ] {
            let prog = parse_program(text).unwrap();
            assert!(
                matches!(ground(&prog), Err(AspError::Unsafe { .. })),
                "{text} should be unsafe"
            );
        }
    }

    #[test]
    fn functional_terms_join() {
        let gp = ground_text(
            r#"
            attr("version", node("a"), "1.0").
            attr("version", node("b"), "2.0").
            has_version(N) :- attr("version", node(N), V).
        "#,
        );
        let atoms = atom_strings(&gp, &gp.possible);
        assert!(atoms.contains(&"has_version(\"a\")".to_string()));
        assert!(atoms.contains(&"has_version(\"b\")".to_string()));
    }

    #[test]
    fn deep_chain_grounds_in_rounds() {
        // s(0), s(i+1) :- s(i), step(i, i+1) with 50 steps: exercises the
        // semi-naive loop over many rounds.
        let mut text = String::from("s(0).\n");
        for i in 0..50 {
            text.push_str(&format!("step({},{}).\n", i, i + 1));
        }
        text.push_str("s(Y) :- s(X), step(X,Y).\n");
        let gp = ground_text(&text);
        let atoms = atom_strings(&gp, &gp.certain);
        assert!(atoms.contains(&"s(50)".to_string()));
    }

    #[test]
    fn duplicate_facts_dedupe() {
        let gp = ground_text("a. a. a.");
        assert_eq!(gp.rules.len(), 1);
    }
}
