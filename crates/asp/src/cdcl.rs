//! A MiniSat-style CDCL SAT solver: two watched literals with blockers,
//! first-UIP conflict analysis, VSIDS-style activity ordering, phase
//! saving, Luby restarts, and LBD-scored learnt-clause deletion — each
//! search heuristic toggleable via [`SatConfig`]. Supports incremental
//! clause addition between `solve` calls (used by the optimizer's
//! branch-and-bound loop and the stability CEGAR loop) and an optional
//! [`preprocessing pass`](Sat::preprocess) whose eliminated variables
//! are transparently reconstructed in returned models and transparently
//! *reintroduced* when later clauses or assumptions mention them.

use crate::cancel::CancelToken;
use crate::preprocess::{preprocess as run_preprocess, PreprocessConfig, PreprocessStats, TraceEntry};

/// A boolean variable, numbered from 0.
pub type Var = u32;

/// A literal: variable plus sign. `Lit(2v)` is the positive literal,
/// `Lit(2v+1)` the negative.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }
    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }
    /// The underlying variable.
    pub fn var(self) -> Var {
        self.0 >> 1
    }
    /// True for negative literals.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }
    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }
    /// Build from a variable and a desired truth value.
    pub fn with_value(v: Var, value: bool) -> Lit {
        if value {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[derive(Clone, Copy)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// Search-heuristic toggles for the CDCL loop. Defaults enable
/// everything (the "modern" engine); switching one off reproduces the
/// corresponding seed-engine behavior, which is what the solver-config
/// differential matrix exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SatConfig {
    /// Branch on the variable's last-seen polarity instead of `false`.
    pub phase_saving: bool,
    /// Luby-scheduled restarts.
    pub restarts: bool,
    /// Score learnt clauses by literal block distance for database
    /// reduction (protecting glue clauses) instead of by activity only.
    pub lbd_deletion: bool,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            phase_saving: true,
            restarts: true,
            lbd_deletion: true,
        }
    }
}

impl SatConfig {
    /// All heuristics off — the seed engine's search loop.
    pub fn seed_engine() -> Self {
        SatConfig {
            phase_saving: false,
            restarts: false,
            lbd_deletion: false,
        }
    }
}

/// Outcome of a `solve` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found (query it with [`Sat::value`]).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was reached.
    Unknown,
    /// The search was cancelled cooperatively before an answer was
    /// reached — `deadline` is true when a wall-clock deadline fired,
    /// false for an explicit cancel. The solver remains usable.
    Cancelled {
        /// Whether the cancellation came from a deadline.
        deadline: bool,
    },
}

/// Search statistics, cumulative across `solve` calls.
#[derive(Clone, Copy, Default, Debug)]
pub struct SatStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Number of clause-database reductions.
    pub reductions: u64,
}

/// The CDCL solver.
///
/// `Clone` copies the complete solver state (clause arena, watches,
/// heuristics). Cloning a freshly-translated instance and searching on
/// the clone is indistinguishable from translating again — the basis
/// for re-solving memoized programs without re-running translation.
#[derive(Clone)]
pub struct Sat {
    // Clause storage. Original and learnt clauses share the arena;
    // learnt ones are marked and may be deleted by clause-DB reduction
    // (tombstoned in place; watchers are dropped lazily).
    clauses: Vec<Box<[Lit]>>,
    learnt: Vec<bool>,
    deleted: Vec<bool>,
    clause_activity: Vec<f64>,
    lbd: Vec<u32>, // literal block distance per clause (0 = original)
    cla_inc: f64,
    n_learnt_live: usize,
    max_learnts: usize,
    watches: Vec<Vec<Watcher>>, // indexed by Lit.0

    assign: Vec<LBool>,  // per var
    level: Vec<u32>,     // per var
    reason: Vec<u32>,    // per var; u32::MAX = decision/none
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>,          // binary max-heap on activity
    heap_index: Vec<u32>,    // var -> heap slot, u32::MAX if absent
    phase: Vec<bool>,        // saved phases

    seen: Vec<bool>, // scratch for conflict analysis

    // Final-conflict analysis: after an Unsat result from `solve_with`,
    // the subset of the assumptions that participated in the conflict
    // (MiniSat's `conflict` vector). Empty when the formula is
    // unsatisfiable without any assumptions.
    final_core: Vec<Lit>,

    // Preprocessing residue: variables removed by pure-literal / bounded
    // variable elimination, their saved clauses (chronological order),
    // and the reconstructed model values for them after a Sat result.
    eliminated: Vec<bool>,
    elim_trace: Vec<(Var, Vec<Vec<Lit>>)>,
    ext_val: Vec<bool>,

    ok: bool, // false once a top-level conflict proves UNSAT
    /// Cumulative statistics.
    pub stats: SatStats,
    conflict_budget: u64,
    cancel: CancelToken,
    cfg: SatConfig,
}

const NO_REASON: u32 = u32::MAX;

impl Default for Sat {
    fn default() -> Self {
        Self::new()
    }
}

impl Sat {
    /// Fresh empty solver.
    pub fn new() -> Sat {
        Sat {
            clauses: Vec::new(),
            learnt: Vec::new(),
            deleted: Vec::new(),
            clause_activity: Vec::new(),
            lbd: Vec::new(),
            cla_inc: 1.0,
            n_learnt_live: 0,
            max_learnts: 4000,
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            final_core: Vec::new(),
            eliminated: Vec::new(),
            elim_trace: Vec::new(),
            ext_val: Vec::new(),
            ok: true,
            stats: SatStats::default(),
            conflict_budget: u64::MAX,
            cancel: CancelToken::none(),
            cfg: SatConfig::default(),
        }
    }

    /// Limit the number of conflicts per `solve` call (`u64::MAX` = none).
    pub fn set_conflict_budget(&mut self, budget: u64) {
        self.conflict_budget = budget;
    }

    /// Install a cooperative cancellation token, polled between search
    /// steps. The default [`CancelToken::none`] never fires.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Set the search-heuristic toggles (takes effect on the next
    /// `solve` / database reduction).
    pub fn set_search_config(&mut self, cfg: SatConfig) {
        self.cfg = cfg;
    }

    /// The current search-heuristic toggles.
    pub fn search_config(&self) -> SatConfig {
        self.cfg
    }

    /// Set the learnt-clause count that triggers a database reduction
    /// (the threshold then grows geometrically). Mainly for tests.
    pub fn set_max_learnts(&mut self, n: usize) {
        self.max_learnts = n;
    }

    /// Allocate a new variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.eliminated.push(false);
        self.ext_val.push(false);
        self.heap_index.push(u32::MAX);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Add a clause. Must be called with the solver at decision level 0
    /// (it backtracks there itself). Returns `false` when the formula has
    /// become trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.reintroduce_vars(lits);
        if !self.ok {
            return false;
        }
        self.backtrack(0);
        // Normalize: sort, dedupe, drop false-at-0, detect tautology and
        // satisfied-at-0.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut i = 0;
        while i + 1 < c.len() {
            if c[i].var() == c[i + 1].var() {
                return true; // x and !x: tautology
            }
            i += 1;
        }
        c.retain(|&l| {
            debug_assert!((l.var() as usize) < self.assign.len(), "unknown var");
            self.lit_value(l) != LBool::False
        });
        if c.iter().any(|&l| self.lit_value(l) == LBool::True) {
            return true; // satisfied at level 0
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(c.into_boxed_slice(), false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, c: Box<[Lit]>, learnt: bool, lbd: u32) -> u32 {
        let idx = self.clauses.len() as u32;
        self.deleted.push(false);
        self.lbd.push(lbd);
        self.clause_activity.push(if learnt { self.cla_inc } else { 0.0 });
        if learnt {
            self.n_learnt_live += 1;
        }
        let w0 = Watcher {
            clause: idx,
            blocker: c[1],
        };
        let w1 = Watcher {
            clause: idx,
            blocker: c[0],
        };
        self.watches[c[0].negate().0 as usize].push(w0);
        self.watches[c[1].negate().0 as usize].push(w1);
        self.clauses.push(c);
        self.learnt.push(learnt);
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var() as usize;
        self.assign[v] = LBool::from_bool(!l.is_neg());
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Propagate until fixpoint; returns the conflicting clause index.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negate();
            // Take the watch list; rebuild it as we go.
            let mut ws = std::mem::take(&mut self.watches[p.0 as usize]);
            let mut kept = 0;
            let mut conflict = None;
            let mut wi = 0;
            while wi < ws.len() {
                let w = ws[wi];
                wi += 1;
                if self.deleted[w.clause as usize] {
                    continue; // lazily drop watchers of deleted clauses
                }
                if self.lit_value(w.blocker) == LBool::True {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let ci = w.clause as usize;
                // Ensure false_lit is at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                let first = self.clauses[ci][0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[kept] = Watcher {
                        clause: w.clause,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Find a new watch.
                let mut found = false;
                for k in 2..self.clauses[ci].len() {
                    if self.lit_value(self.clauses[ci][k]) != LBool::False {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[new_watch.negate().0 as usize].push(Watcher {
                            clause: w.clause,
                            blocker: first,
                        });
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Unit or conflict.
                ws[kept] = w;
                kept += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: keep the remaining watchers and stop.
                    while wi < ws.len() {
                        ws[kept] = ws[wi];
                        kept += 1;
                        wi += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(w.clause);
                } else {
                    self.enqueue(first, w.clause);
                }
            }
            ws.truncate(kept);
            self.watches[p.0 as usize] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.phase[v as usize] = !self.trail[i].is_neg();
            self.assign[v as usize] = LBool::Undef;
            self.reason[v as usize] = NO_REASON;
            if self.heap_index[v as usize] == u32::MAX {
                self.heap_insert(v);
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    // --- activity heap ---

    fn heap_insert(&mut self, v: Var) {
        let slot = self.heap.len() as u32;
        self.heap.push(v);
        self.heap_index[v as usize] = slot;
        self.heap_up(slot as usize);
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] > self.activity[self.heap[parent] as usize] {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_index[self.heap[a] as usize] = a as u32;
        self.heap_index[self.heap[b] as usize] = b as u32;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_index[top as usize] = u32::MAX;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last as usize] = 0;
            self.heap_down(0);
        }
        Some(top)
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let slot = self.heap_index[v as usize];
        if slot != u32::MAX {
            self.heap_up(slot as usize);
        }
    }

    fn decay_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    // --- conflict analysis ---

    /// First-UIP analysis. Returns the learnt clause (asserting literal
    /// first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for the asserting lit
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut clause = confl;
        let current_level = self.decision_level();

        loop {
            let start = usize::from(p.is_some());
            // Iterate clause literals except the already-resolved one.
            for k in start..self.clauses[clause as usize].len() {
                let q = self.clauses[clause as usize][k];
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next literal on the trail to resolve.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var() as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            clause = self.reason[v];
            debug_assert_ne!(clause, NO_REASON);
            self.bump_clause(clause);
            p = Some(lit);
        }
        learnt[0] = p.expect("UIP found").negate();

        // Clause minimization: drop literals implied by the rest.
        let mut minimized: Vec<Lit> = Vec::with_capacity(learnt.len());
        minimized.push(learnt[0]);
        for &l in &learnt[1..] {
            if !self.is_redundant(l) {
                minimized.push(l);
            }
        }
        for &l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }

        // Backtrack level: second-highest level in the clause.
        let bt = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.level[minimized[i].var() as usize]
                    > self.level[minimized[max_i].var() as usize]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.level[minimized[1].var() as usize]
        };
        (minimized, bt)
    }

    /// Local (non-recursive) redundancy test: a literal is redundant if
    /// its reason clause's literals are all already in the learnt clause
    /// (marked seen) or assigned at level 0.
    fn is_redundant(&self, l: Lit) -> bool {
        let v = l.var() as usize;
        let r = self.reason[v];
        if r == NO_REASON {
            return false;
        }
        self.clauses[r as usize].iter().skip(1).all(|&q| {
            let qv = q.var() as usize;
            self.seen[qv] || self.level[qv] == 0
        })
    }

    fn bump_clause(&mut self, c: u32) {
        let ci = c as usize;
        if !self.learnt[ci] {
            return;
        }
        self.clause_activity[ci] += self.cla_inc;
        if self.clause_activity[ci] > 1e20 {
            for a in &mut self.clause_activity {
                *a *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Delete roughly the worse half of the learnt clauses. Binary
    /// clauses and clauses currently serving as reasons are kept; with
    /// LBD deletion enabled, glue clauses (LBD ≤ 2) are also protected
    /// and clauses are ranked worst-LBD-first (activity breaks ties),
    /// otherwise purely by activity. Deletion tombstones the clause; its
    /// watchers are dropped lazily by `propagate`.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        self.cla_inc *= 1.001; // slight protection for recent clauses
        let locked: std::collections::HashSet<u32> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var() as usize])
            .filter(|&r| r != NO_REASON)
            .collect();
        let lbd_mode = self.cfg.lbd_deletion;
        let mut cands: Vec<(u32, f64, u32)> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let ci = i as usize;
                self.learnt[ci]
                    && !self.deleted[ci]
                    && self.clauses[ci].len() > 2
                    && !locked.contains(&i)
                    && !(lbd_mode && self.lbd[ci] <= 2)
            })
            .map(|i| (self.lbd[i as usize], self.clause_activity[i as usize], i))
            .collect();
        if lbd_mode {
            // Worst clauses first: highest LBD, then lowest activity.
            cands.sort_by(|a, b| {
                b.0.cmp(&a.0).then(
                    a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal),
                )
            });
        } else {
            cands.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        }
        let to_delete = cands.len() / 2;
        for &(_, _, i) in cands.iter().take(to_delete) {
            self.deleted[i as usize] = true;
            self.n_learnt_live -= 1;
            self.stats.deleted_clauses += 1;
        }
    }

    /// Literal block distance of a (learnt) clause under the current
    /// assignment: the number of distinct decision levels among its
    /// literals.
    fn compute_lbd(&self, c: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = c.iter().map(|l| self.level[l.var() as usize]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// Drop every learnt clause, clear saved phases and activities: the
    /// next `solve` searches from scratch. Used by the optimizer's
    /// non-incremental branch-and-bound mode (and its differential
    /// tests) to reproduce the seed engine's re-search behavior.
    pub fn forget_learnts(&mut self) {
        self.backtrack(0);
        for i in 0..self.clauses.len() {
            if self.learnt[i] && !self.deleted[i] {
                self.deleted[i] = true;
            }
        }
        self.n_learnt_live = 0;
        // Level-0 trail entries may cite learnt reasons; clear them (a
        // level-0 assignment needs no justification).
        for i in 0..self.trail.len() {
            let v = self.trail[i].var() as usize;
            self.reason[v] = NO_REASON;
        }
        for p in &mut self.phase {
            *p = false;
        }
        for a in &mut self.activity {
            *a = 0.0;
        }
        self.var_inc = 1.0;
        self.cla_inc = 1.0;
    }

    // --- main search ---

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assign[v as usize] == LBool::Undef && !self.eliminated[v as usize] {
                let polarity = self.cfg.phase_saving && self.phase[v as usize];
                return Some(Lit::with_value(v, polarity));
            }
        }
        None
    }

    /// Solve the current formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solve under assumptions: the given literals are treated as
    /// temporary decisions. An `Unsat` result with a non-empty assumption
    /// set means "unsatisfiable under these assumptions"; the solver
    /// remains usable, and only a level-0 conflict marks the formula
    /// globally unsatisfiable.
    pub fn solve_with(&mut self, assumps: &[Lit]) -> SatResult {
        self.final_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        // Assumptions over preprocessing-eliminated variables force those
        // variables (and everything eliminated after them) back in.
        self.reintroduce_vars(assumps);
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let mut conflicts_this_call: u64 = 0;
        let mut restart_unit = 0u64;
        let mut next_restart = luby(restart_unit) * 100;
        // Each loop iteration is one conflict or one decision, so this
        // polls the token at a bounded interval without an `Instant`
        // syscall per step. `is_cancellable` keeps the common
        // non-cancellable path to a single branch.
        let mut steps: u64 = 0;
        let poll = self.cancel.is_cancellable();

        loop {
            steps += 1;
            if poll && steps & 1023 == 1 {
                if let Some(deadline) = self.cancel.check() {
                    self.backtrack(0);
                    return SatResult::Cancelled { deadline };
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_call += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                let lbd = self.compute_lbd(&learnt);
                self.backtrack(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], NO_REASON);
                } else {
                    let idx = self.attach_clause(learnt.clone().into_boxed_slice(), true, lbd);
                    self.enqueue(learnt[0], idx);
                }
                self.decay_activity();
                if self.n_learnt_live > self.max_learnts {
                    self.backtrack(0);
                    self.reduce_db();
                    self.max_learnts = self.max_learnts + self.max_learnts / 2;
                }
                if conflicts_this_call >= self.conflict_budget {
                    self.backtrack(0);
                    return SatResult::Unknown;
                }
                if self.cfg.restarts && conflicts_this_call >= next_restart {
                    restart_unit += 1;
                    next_restart = conflicts_this_call + luby(restart_unit) * 100;
                    self.stats.restarts += 1;
                    self.backtrack(0);
                }
            } else {
                // Re-establish assumptions before free decisions.
                let mut next: Option<Lit> = None;
                let mut assumption_conflict: Option<Lit> = None;
                while (self.decision_level() as usize) < assumps.len() {
                    let a = assumps[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied: open a dummy level to keep
                            // the level/assumption correspondence.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            assumption_conflict = Some(a);
                            break;
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                if let Some(a) = assumption_conflict {
                    self.analyze_final(a);
                    self.backtrack(0);
                    return SatResult::Unsat;
                }
                match next.or_else(|| self.pick_branch()) {
                    None => {
                        self.reconstruct_model();
                        return SatResult::Sat;
                    }
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, NO_REASON);
                    }
                }
            }
        }
    }

    /// After an `Unsat` answer from [`Sat::solve_with`], the subset of
    /// the assumptions that participated in the final conflict — an
    /// (unminimized) assumption core. Empty when the formula is
    /// unsatisfiable without any assumptions (a level-0 conflict), and
    /// cleared at the start of every `solve_with` call.
    pub fn final_core(&self) -> &[Lit] {
        &self.final_core
    }

    /// MiniSat-style final-conflict analysis. `a` is an assumption found
    /// falsified while re-establishing the assumption prefix; every
    /// trail level below the current one is an assumption level. Walks
    /// the implication trail backwards from `¬a`, collecting the
    /// above-level-0 decisions (i.e. earlier assumptions) the conflict
    /// transitively depends on.
    fn analyze_final(&mut self, a: Lit) {
        self.final_core.clear();
        self.final_core.push(a);
        if self.trail_lim.is_empty() {
            // ¬a is implied by the clauses alone at level 0: {a} is the
            // whole conflicting assumption set.
            return;
        }
        self.seen[a.var() as usize] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var() as usize;
            if !self.seen[v] {
                continue;
            }
            let r = self.reason[v];
            if r == NO_REASON {
                // A decision above level 0 in the assumption-
                // re-establishment phase is necessarily an assumption.
                self.final_core.push(l);
            } else {
                for &p in self.clauses[r as usize].iter() {
                    let pv = p.var() as usize;
                    if pv != v && self.level[pv] > 0 {
                        self.seen[pv] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        // ¬a may itself sit at level 0 (implied before any assumption
        // level); the walk above never clears its scratch bit then.
        self.seen[a.var() as usize] = false;
    }

    /// Model value of `v` after a `Sat` result. Unassigned vars (possible
    /// when they occur in no clause) read as `false`; variables removed
    /// by preprocessing read their reconstructed value.
    pub fn value(&self, v: Var) -> bool {
        if self.eliminated[v as usize] {
            return self.ext_val[v as usize];
        }
        matches!(self.assign[v as usize], LBool::True)
    }

    // --- preprocessing integration ---

    /// Run the [`crate::preprocess`] pipeline over the current formula
    /// and rebuild the solver from the simplified clauses. Must be
    /// called before search (typically right after translation);
    /// existing learnt clauses are discarded. Variables flagged in
    /// `frozen` are never eliminated and stay safe to mention in later
    /// clauses and assumptions; eliminated variables still yield correct
    /// [`Sat::value`]s through model reconstruction, and are reintroduced
    /// automatically if mentioned again.
    pub fn preprocess(&mut self, config: &PreprocessConfig, frozen: &[bool]) -> PreprocessStats {
        if !self.ok || !config.enabled {
            return PreprocessStats::default();
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.ok = false;
            return PreprocessStats::default();
        }
        let mut input: Vec<Vec<Lit>> = Vec::with_capacity(self.trail.len() + self.clauses.len());
        for &l in &self.trail {
            input.push(vec![l]);
        }
        for (i, c) in self.clauses.iter().enumerate() {
            // Learnt clauses are implied — dropping them is sound (and
            // there are none on the intended call path, pre-search).
            if !self.deleted[i] && !self.learnt[i] {
                input.push(c.to_vec());
            }
        }
        let pre = run_preprocess(self.num_vars(), &input, frozen, config);
        let stats = pre.stats;
        if pre.unsat {
            self.ok = false;
            return stats;
        }
        self.rebuild_from(pre);
        stats
    }

    /// Replace the solver's formula with a preprocessing result.
    fn rebuild_from(&mut self, pre: crate::preprocess::Preprocessed) {
        self.clauses.clear();
        self.learnt.clear();
        self.deleted.clear();
        self.clause_activity.clear();
        self.lbd.clear();
        self.n_learnt_live = 0;
        for w in &mut self.watches {
            w.clear();
        }
        self.trail.clear();
        self.trail_lim.clear();
        self.qhead = 0;
        for v in 0..self.num_vars() {
            self.assign[v] = LBool::Undef;
            self.level[v] = 0;
            self.reason[v] = NO_REASON;
        }
        let clauses = pre.clauses.clone();
        for entry in pre.into_trace() {
            match entry {
                TraceEntry::Fixed(l) => {
                    if self.lit_value(l) == LBool::Undef {
                        self.enqueue(l, NO_REASON);
                    }
                }
                TraceEntry::Eliminated { var, clauses } => {
                    self.eliminated[var as usize] = true;
                    self.elim_trace.push((var, clauses));
                }
            }
        }
        for c in clauses {
            debug_assert!(c.len() >= 2, "preprocessed output must be unit-free");
            self.attach_clause(c.into_boxed_slice(), false, 0);
        }
        if self.propagate().is_some() {
            self.ok = false;
        }
    }

    /// Pop elimination-stack entries (newest first) until no literal in
    /// `lits` references an eliminated variable, re-adding each entry's
    /// saved clauses. Entries never mention variables eliminated before
    /// them, so each restored clause is immediately attachable.
    fn reintroduce_vars(&mut self, lits: &[Lit]) {
        if self.elim_trace.is_empty() {
            return;
        }
        while lits.iter().any(|l| self.eliminated[l.var() as usize]) {
            let (var, clauses) = self
                .elim_trace
                .pop()
                .expect("eliminated variable without a trace entry");
            self.eliminated[var as usize] = false;
            if self.heap_index[var as usize] == u32::MAX
                && self.assign[var as usize] == LBool::Undef
            {
                self.heap_insert(var);
            }
            for c in clauses {
                if !self.add_clause(&c) {
                    return; // formula became UNSAT; ok is already false
                }
            }
        }
    }

    /// Compute model values for eliminated variables by replaying the
    /// elimination stack newest-first over the current assignment.
    fn reconstruct_model(&mut self) {
        if self.elim_trace.is_empty() {
            return;
        }
        let mut model: Vec<bool> = (0..self.num_vars())
            .map(|v| matches!(self.assign[v], LBool::True))
            .collect();
        for (var, clauses) in self.elim_trace.iter().rev() {
            let vi = *var as usize;
            let sat_under =
                |m: &[bool], c: &[Lit]| c.iter().any(|l| m[l.var() as usize] != l.is_neg());
            model[vi] = false;
            if !clauses.iter().all(|c| sat_under(&model, c)) {
                model[vi] = true;
                debug_assert!(
                    clauses.iter().all(|c| sat_under(&model, c)),
                    "elimination invariant violated for var {var}"
                );
            }
        }
        for (var, _) in &self.elim_trace {
            self.ext_val[*var as usize] = model[*var as usize];
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...), ported from MiniSat.
fn luby(x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: Var) -> Lit {
        Lit::pos(v)
    }
    fn n(v: Var) -> Lit {
        Lit::neg(v)
    }

    #[test]
    fn lit_encoding() {
        assert_eq!(p(3).var(), 3);
        assert_eq!(n(3).var(), 3);
        assert!(!p(3).is_neg());
        assert!(n(3).is_neg());
        assert_eq!(p(3).negate(), n(3));
    }

    #[test]
    fn trivial_sat() {
        let mut s = Sat::new();
        let a = s.new_var();
        s.add_clause(&[p(a)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.value(a));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Sat::new();
        let a = s.new_var();
        assert!(s.add_clause(&[p(a)]));
        assert!(!s.add_clause(&[n(a)]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        let mut s = Sat::new();
        let vars: Vec<Var> = (0..20).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[n(w[0]), p(w[1])]);
        }
        s.add_clause(&[p(vars[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        for &v in &vars {
            assert!(s.value(v));
        }
    }

    #[test]
    fn xor_chain_sat() {
        // (a XOR b) via clauses; satisfiable.
        let mut s = Sat::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[p(a), p(b)]);
        s.add_clause(&[n(a), n(b)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_ne!(s.value(a), s.value(b));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: vars x[i][j] = pigeon i in hole j.
        let mut s = Sat::new();
        let mut x = [[0u32; 2]; 3];
        for row in &mut x {
            for cell in row {
                *cell = s.new_var();
            }
        }
        for row in &x {
            s.add_clause(&[p(row[0]), p(row[1])]);
        }
        for i1 in 0..3 {
            for i2 in (i1 + 1)..3 {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[n(a), n(b)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        let np = 4;
        let nh = 3;
        let mut s = Sat::new();
        let x: Vec<Vec<Var>> = (0..np)
            .map(|_| (0..nh).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let c: Vec<Lit> = row.iter().map(|&v| p(v)).collect();
            s.add_clause(&c);
        }
        for i1 in 0..np {
            for i2 in (i1 + 1)..np {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[n(a), n(b)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Sat::new();
        let a = s.new_var();
        assert!(s.add_clause(&[p(a), n(a)]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn duplicate_literals_collapse() {
        let mut s = Sat::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[p(a), p(a), p(b), p(b)]);
        s.add_clause(&[n(a)]);
        s.add_clause(&[n(b), p(a)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn incremental_strengthening() {
        let mut s = Sat::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[p(a), p(b)]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Forbid the found model piece by piece; eventually UNSAT.
        s.add_clause(&[n(a)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(!s.value(a));
        assert!(s.value(b));
        s.add_clause(&[n(b)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn new_vars_after_solve() {
        let mut s = Sat::new();
        let a = s.new_var();
        s.add_clause(&[p(a)]);
        assert_eq!(s.solve(), SatResult::Sat);
        let b = s.new_var();
        s.add_clause(&[n(a), p(b)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.value(b));
    }

    #[test]
    fn model_enumeration_count() {
        // Count models of (a ∨ b ∨ c) by blocking: should be 7.
        let mut s = Sat::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(&[p(vars[0]), p(vars[1]), p(vars[2])]);
        let mut count = 0;
        while s.solve() == SatResult::Sat {
            count += 1;
            assert!(count <= 7, "too many models");
            let block: Vec<Lit> = vars
                .iter()
                .map(|&v| Lit::with_value(v, !s.value(v)))
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn random_3sat_vs_bruteforce() {
        // Deterministic pseudo-random instances cross-checked against
        // exhaustive enumeration.
        let mut seed = 0x243F6A8885A308D3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..60 {
            let nvars = 6 + (round % 4) as u32;
            let nclauses = 10 + (round % 17);
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u64) as Var;
                    let neg = next() % 2 == 0;
                    c.push(if neg { n(v) } else { p(v) });
                }
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for c in &clauses {
                    if !c.iter().any(|l| {
                        let val = (m >> l.var()) & 1 == 1;
                        val != l.is_neg()
                    }) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Sat::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve();
            assert_eq!(
                got == SatResult::Sat,
                brute_sat,
                "round {round}: mismatch (cdcl={got:?}, brute={brute_sat})"
            );
            if got == SatResult::Sat {
                // Verify the model actually satisfies every clause.
                for c in &clauses {
                    assert!(
                        c.iter().any(|l| s.value(l.var()) != l.is_neg()),
                        "round {round}: model does not satisfy clause"
                    );
                }
            }
        }
    }

    #[test]
    fn clause_db_reduction_preserves_answers() {
        // PHP(7,6): UNSAT with thousands of conflicts. Force aggressive
        // reductions and check the proof still lands.
        let np = 7;
        let nh = 6;
        let mut s = Sat::new();
        s.set_max_learnts(50);
        let x: Vec<Vec<Var>> = (0..np)
            .map(|_| (0..nh).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let c: Vec<Lit> = row.iter().map(|&v| p(v)).collect();
            s.add_clause(&c);
        }
        for i1 in 0..np {
            for i2 in (i1 + 1)..np {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[n(a), n(b)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats.reductions > 0, "reduction must have triggered");
        assert!(s.stats.deleted_clauses > 0);
    }

    #[test]
    fn reduction_with_sat_instances() {
        // Random satisfiable-ish instances under a tiny threshold still
        // produce verified models.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let nvars = 30u32;
            let mut s = Sat::new();
            s.set_max_learnts(20);
            for _ in 0..nvars {
                s.new_var();
            }
            let mut clauses = Vec::new();
            for _ in 0..90 {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u64) as Var;
                    c.push(if next() % 2 == 0 { n(v) } else { p(v) });
                }
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            if s.solve() == SatResult::Sat {
                for c in &clauses {
                    assert!(c.iter().any(|l| s.value(l.var()) != l.is_neg()));
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn seed_engine_config_still_solves() {
        let np = 5;
        let nh = 4;
        let mut s = Sat::new();
        s.set_search_config(SatConfig::seed_engine());
        let x: Vec<Vec<Var>> = (0..np)
            .map(|_| (0..nh).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let c: Vec<Lit> = row.iter().map(|&v| p(v)).collect();
            s.add_clause(&c);
        }
        for i1 in 0..np {
            for i2 in (i1 + 1)..np {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[n(a), n(b)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert_eq!(s.stats.restarts, 0, "restarts disabled");
    }

    #[test]
    fn preprocess_then_solve_reconstructs_eliminated() {
        // Chain a → x → y → b with x, y eliminable; a, b frozen.
        let mut s = Sat::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let (a, x, y, b) = (vars[0], vars[1], vars[2], vars[3]);
        let orig = vec![
            vec![n(a), p(x)],
            vec![n(x), p(y)],
            vec![n(y), p(b)],
            vec![p(a)],
        ];
        for c in &orig {
            s.add_clause(c);
        }
        let mut frozen = vec![false; 4];
        frozen[a as usize] = true;
        frozen[b as usize] = true;
        let stats = s.preprocess(&PreprocessConfig::default(), &frozen);
        assert!(stats.fixed_literals > 0, "unit chain should fix: {stats:?}");
        assert_eq!(s.solve(), SatResult::Sat);
        for c in &orig {
            assert!(
                c.iter().any(|l| s.value(l.var()) != l.is_neg()),
                "reconstructed model violates {c:?}"
            );
        }
    }

    #[test]
    fn eliminated_var_reintroduced_by_assumption() {
        // (¬x ∨ a), (x ∨ b): x is eliminable over frozen a, b. Assuming
        // x afterwards must still behave like the original formula:
        // x=true forces a.
        let mut s = Sat::new();
        let a = s.new_var();
        let b = s.new_var();
        let x = s.new_var();
        s.add_clause(&[n(x), p(a)]);
        s.add_clause(&[p(x), p(b)]);
        let frozen = vec![true, true, false];
        let stats = s.preprocess(&PreprocessConfig::default(), &frozen);
        assert_eq!(stats.eliminated_vars, 1, "{stats:?}");
        // x is gone but an assumption on it reintroduces it.
        assert_eq!(s.solve_with(&[p(x), n(b)]), SatResult::Sat);
        assert!(s.value(a), "x=true must force a through the restored clause");
        // And the original semantics fully hold: x ∧ ¬a is now UNSAT.
        assert_eq!(s.solve_with(&[p(x), n(a)]), SatResult::Unsat);
    }

    #[test]
    fn eliminated_var_reintroduced_by_clause() {
        let mut s = Sat::new();
        let a = s.new_var();
        let b = s.new_var();
        let x = s.new_var();
        s.add_clause(&[n(x), p(a)]);
        s.add_clause(&[p(x), p(b)]);
        let frozen = vec![true, true, false];
        assert_eq!(
            s.preprocess(&PreprocessConfig::default(), &frozen).eliminated_vars,
            1
        );
        // New clauses force x true and a false: UNSAT overall.
        assert!(s.add_clause(&[p(x)]));
        let ok = s.add_clause(&[n(a)]);
        assert!(!ok || s.solve() == SatResult::Unsat);
    }

    #[test]
    fn preprocess_detects_unsat() {
        let mut s = Sat::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[p(a), p(b)]);
        s.add_clause(&[p(a), n(b)]);
        s.add_clause(&[n(a), p(b)]);
        s.add_clause(&[n(a), n(b)]);
        let frozen = vec![false; 2];
        s.preprocess(&PreprocessConfig::default(), &frozen);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn forget_learnts_resets_search_state() {
        // Solve something conflict-heavy, forget, and re-solve: same
        // answer, and the learnt database is empty in between.
        let np = 6;
        let nh = 5;
        let mut s = Sat::new();
        let x: Vec<Vec<Var>> = (0..np)
            .map(|_| (0..nh).map(|_| s.new_var()).collect())
            .collect();
        // Placement clauses for all pigeons but the last: satisfiable
        // (the last pigeon simply goes nowhere).
        for row in x.iter().take(np - 1) {
            let c: Vec<Lit> = row.iter().map(|&v| p(v)).collect();
            s.add_clause(&c);
        }
        for i1 in 0..np {
            for i2 in (i1 + 1)..np {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[n(a), n(b)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Sat);
        s.forget_learnts();
        assert_eq!(s.n_learnt_live, 0);
        assert!(s.phase.iter().all(|&ph| !ph), "phases cleared");
        // Now place the last pigeon too: the full PHP(6,5) is UNSAT.
        let c: Vec<Lit> = x[np - 1].iter().map(|&v| p(v)).collect();
        s.add_clause(&c);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn lbd_deletion_preserves_answers() {
        // PHP(7,6) under a tiny learnt budget with LBD deletion on
        // (default): the UNSAT proof must still land and glue clauses
        // must have been protected (reductions happened).
        let np = 7;
        let nh = 6;
        let mut s = Sat::new();
        s.set_max_learnts(50);
        assert!(s.search_config().lbd_deletion);
        let x: Vec<Vec<Var>> = (0..np)
            .map(|_| (0..nh).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            let c: Vec<Lit> = row.iter().map(|&v| p(v)).collect();
            s.add_clause(&c);
        }
        for i1 in 0..np {
            for i2 in (i1 + 1)..np {
                for (&a, &b) in x[i1].iter().zip(&x[i2]) {
                    s.add_clause(&[n(a), n(b)]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats.reductions > 0);
        assert!(s.stats.deleted_clauses > 0);
    }

    #[test]
    fn stats_account_search_effort() {
        let mut s = Sat::new();
        let vars: Vec<Var> = (0..12).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(&[n(w[0]), p(w[1])]);
        }
        s.add_clause(&[p(vars[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.stats.propagations >= vars.len() as u64 - 1);
        let before = s.stats;
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(
            s.stats.propagations >= before.propagations,
            "stats are cumulative"
        );
    }
}
