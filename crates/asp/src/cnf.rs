//! Translation of a [`GroundProgram`] into CNF for the CDCL solver:
//! Clark completion for normal rules, free atoms with support clauses for
//! choice elements, cardinality bounds via sequential counters, integrity
//! constraints as plain clauses, and cost-tuple literals for `#minimize`.

use crate::cdcl::{Lit, Sat, Var};
use crate::ground::GroundProgram;
use crate::term::AtomId;
use rustc_hash::FxHashMap;

/// Everything the solving layers need to map between atoms and SAT
/// variables, find rule-body literals (for loop clauses), and build cost
/// bounds.
#[derive(Clone)]
pub struct Translation {
    /// SAT variable per interned atom (indexed by `AtomId.0`).
    pub atom_var: Vec<Var>,
    /// A variable constrained true (for empty bodies).
    pub true_var: Var,
    /// Body literal per ground rule (true iff the rule body holds).
    pub rule_body: Vec<Lit>,
    /// Body literal per ground choice instance.
    pub choice_body: Vec<Lit>,
    /// Cost items grouped by priority, **sorted descending by priority**:
    /// `(priority, items)` where each item is `(weight, lit)` and the lit
    /// is true iff the tuple's condition holds.
    pub cost: Vec<(i64, Vec<(i64, Lit)>)>,
}

impl Translation {
    /// Literal for "atom is true".
    pub fn lit(&self, a: AtomId) -> Lit {
        Lit::pos(self.atom_var[a.0 as usize])
    }
}

/// Where a clause produced by [`translate`] came from, at ground-program
/// granularity. Collected by [`translate_collected`] for unsat-core
/// extraction; the normal solving path ([`translate`] into a [`Sat`])
/// drops origins without cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClauseOrigin {
    /// Definitional circuitry: the `true_var` unit, body-literal aux
    /// definitions, sequential-counter internals, minimize group
    /// literals. Never a *reason* for unsatisfiability on its own —
    /// always kept hard during core extraction.
    Definition,
    /// Implication clause of ground rule `i` (`gp.rules[i]`).
    Rule(u32),
    /// Bound-assertion clauses of ground choice instance `i`
    /// (`gp.choices[i]`).
    Choice(u32),
    /// The clause of ground integrity constraint `i`
    /// (`gp.constraints[i]`).
    Constraint(u32),
    /// Completion (support) clause of an atom: "the atom may only be
    /// true if one of its supporting bodies holds".
    Completion(AtomId),
}

impl ClauseOrigin {
    /// Whether clauses with this origin may appear in an unsat core.
    /// Definitional clauses only introduce fresh auxiliary literals and
    /// cannot make a formula unsatisfiable by themselves.
    pub fn is_soft(self) -> bool {
        !matches!(self, ClauseOrigin::Definition)
    }
}

/// Output target of the CNF translation. [`Sat`] implements this by
/// discarding origins; [`CollectedCnf`] records `(clause, origin)` pairs
/// for core extraction. Both must allocate variables in call order so
/// the two paths produce identical literals.
pub trait CnfSink {
    /// Allocate a fresh SAT variable.
    fn new_var(&mut self) -> Var;
    /// Add a clause with its provenance. Returns false if the formula
    /// became trivially unsatisfiable (sinks without that knowledge
    /// return true).
    fn add(&mut self, lits: &[Lit], origin: ClauseOrigin) -> bool;
}

impl CnfSink for Sat {
    fn new_var(&mut self) -> Var {
        Sat::new_var(self)
    }
    fn add(&mut self, lits: &[Lit], _origin: ClauseOrigin) -> bool {
        self.add_clause(lits)
    }
}

/// The raw clause list of a translation, with per-clause provenance —
/// what [`translate_collected`] produces for the explanation pipeline.
pub struct CollectedCnf {
    /// Number of variables allocated (atoms plus auxiliaries).
    pub num_vars: usize,
    /// Clauses in emission order with their origin.
    pub clauses: Vec<(Vec<Lit>, ClauseOrigin)>,
}

impl CnfSink for CollectedCnf {
    fn new_var(&mut self) -> Var {
        let v = self.num_vars as Var;
        self.num_vars += 1;
        v
    }
    fn add(&mut self, lits: &[Lit], origin: ClauseOrigin) -> bool {
        self.clauses.push((lits.to_vec(), origin));
        true
    }
}

/// Build a literal equivalent to the conjunction of `pos` atoms and
/// negated `neg` atoms. Adds both implication directions.
fn body_lit<S: CnfSink>(
    sat: &mut S,
    tr_atom: &[Var],
    true_var: Var,
    pos: &[AtomId],
    neg: &[AtomId],
) -> Lit {
    let lits: Vec<Lit> = pos
        .iter()
        .map(|a| Lit::pos(tr_atom[a.0 as usize]))
        .chain(neg.iter().map(|a| Lit::neg(tr_atom[a.0 as usize])))
        .collect();
    match lits.len() {
        0 => Lit::pos(true_var),
        1 => lits[0],
        _ => {
            let aux = Lit::pos(sat.new_var());
            // aux -> each lit
            for &l in &lits {
                sat.add(&[aux.negate(), l], ClauseOrigin::Definition);
            }
            // conj -> aux
            let mut cl: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
            cl.push(aux);
            sat.add(&cl, ClauseOrigin::Definition);
            aux
        }
    }
}

/// Build a weighted sequential counter over `items` up to `bound + 1`.
/// Returns `(heavy, overflow)`: `heavy` are literals whose single weight
/// already exceeds the bound; `overflow`, when present, is a literal
/// implied whenever the weighted sum of the remaining items exceeds
/// `bound`. One-directional (derivation) clauses, sufficient for upper
/// bounds.
fn build_counter<S: CnfSink>(
    sat: &mut S,
    items: &[(i64, Lit)],
    bound: i64,
) -> (Vec<Lit>, Option<Lit>) {
    debug_assert!(items.iter().all(|&(w, _)| w >= 0));
    // Normalize by the GCD of the weights: uniform weights (e.g. the
    // concretizer's 100-per-build objective) then become a plain
    // cardinality counter, shrinking the circuit by that factor.
    let g = weight_gcd(items);
    let bound = bound.div_euclid(g);
    let mut heavy = Vec::new();
    let mut effective: Vec<(i64, Lit)> = Vec::with_capacity(items.len());
    for &(w, l) in items {
        if w == 0 {
            continue;
        }
        let w = w / g;
        if w > bound {
            heavy.push(l);
        } else {
            effective.push((w, l));
        }
    }
    let total: i64 = effective.iter().map(|&(w, _)| w).sum();
    if total <= bound {
        return (heavy, None); // remaining items cannot overflow
    }
    let overflow = counter_outputs(sat, &effective, bound)[bound as usize];
    (heavy, overflow)
}

/// A reusable upper-bound circuit over one weighted literal set.
///
/// [`add_upper_bound_guarded`] rebuilds an `O(n * bound)` sequential
/// counter for every bound it asserts; branch-and-bound descent asserts
/// a *monotonically shrinking* series of bounds over the *same* items,
/// so all but the first circuit are redundant. A `BoundCounter` is built
/// once at the loosest bound the caller will ever need and then answers
/// every tighter bound with a single one-literal (or guarded two-literal)
/// clause over the already-built counter outputs.
///
/// Contract: construction hard-asserts items whose single weight already
/// exceeds `max_bound` to false, so it is only sound when the caller
/// guarantees the eventually-accepted model keeps the sum at or below
/// `max_bound` — exactly the branch-and-bound situation, where
/// `max_bound` is the incumbent cost and the level is later pinned at
/// its (smaller or equal) optimum.
pub struct BoundCounter {
    /// GCD the weights were normalized by.
    g: i64,
    /// `reg[j]` is implied whenever the normalized sum reaches `j + 1`;
    /// `None` means that sum is unreachable.
    reg: Vec<Option<Lit>>,
}

impl BoundCounter {
    /// Build the counter wide enough to assert any bound in
    /// `0..=max_bound` later. `max_bound` must be non-negative.
    pub fn build(sat: &mut Sat, items: &[(i64, Lit)], max_bound: i64) -> BoundCounter {
        debug_assert!(max_bound >= 0);
        debug_assert!(items.iter().all(|&(w, _)| w >= 0));
        let g = weight_gcd(items);
        let built = max_bound.div_euclid(g);
        let mut effective: Vec<(i64, Lit)> = Vec::with_capacity(items.len());
        for &(w, l) in items {
            if w == 0 {
                continue;
            }
            let w = w / g;
            if w > built {
                // Can never appear in a model within `max_bound`.
                sat.add_clause(&[l.negate()]);
            } else {
                effective.push((w, l));
            }
        }
        let reg = counter_outputs(sat, &effective, built);
        BoundCounter { g, reg }
    }

    /// Assert `sum(weight_i * x_i) <= bound`, guarded by `act` when
    /// given (`act -> bound`). `bound` must not exceed the `max_bound`
    /// the counter was built for. Returns false if the formula became
    /// trivially unsatisfiable.
    pub fn assert_upper(&self, sat: &mut Sat, bound: i64, act: Option<Lit>) -> bool {
        let clause_with = |o: Option<Lit>| -> Vec<Lit> {
            act.iter().map(|a| a.negate()).chain(o.map(|o| o.negate())).collect()
        };
        if bound < 0 {
            return sat.add_clause(&clause_with(None));
        }
        let idx = bound.div_euclid(self.g) as usize;
        debug_assert!(idx < self.reg.len() || self.reg.is_empty());
        match self.reg.get(idx).copied().flatten() {
            // The normalized sum can never reach `idx + 1`: the bound
            // holds vacuously.
            None => true,
            Some(o) => sat.add_clause(&clause_with(Some(o))),
        }
    }
}

/// GCD of the non-zero weights (1 when there are none).
fn weight_gcd(items: &[(i64, Lit)]) -> i64 {
    fn gcd(a: i64, b: i64) -> i64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut g = 0;
    for &(w, _) in items {
        if w > 0 {
            g = gcd(g, w);
        }
    }
    g.max(1)
}

/// The sequential-counter DP shared by [`build_counter`] and
/// [`BoundCounter`]: returns `reg` of width `bound + 1` where `reg[j]`
/// is implied whenever the weighted sum over `items` (already
/// normalized) reaches `j + 1`. One-directional derivation clauses.
fn counter_outputs<S: CnfSink>(sat: &mut S, items: &[(i64, Lit)], bound: i64) -> Vec<Option<Lit>> {
    let width = (bound + 1).max(0) as usize;
    let mut reg: Vec<Option<Lit>> = vec![None; width];
    for &(w, x) in items {
        let prev = reg.clone();
        for j in 1..=(bound + 1) {
            let ji = (j - 1) as usize;
            let from_prev = prev[ji];
            let lower = j - w;
            let from_x: Option<Vec<Lit>> = if lower <= 0 {
                Some(vec![x])
            } else {
                prev[(lower - 1) as usize].map(|p| vec![x, p])
            };
            if from_prev.is_none() && from_x.is_none() {
                reg[ji] = None;
                continue;
            }
            let out = Lit::pos(sat.new_var());
            if let Some(p) = from_prev {
                sat.add(&[p.negate(), out], ClauseOrigin::Definition);
            }
            if let Some(ant) = &from_x {
                let mut cl: Vec<Lit> = ant.iter().map(|l| l.negate()).collect();
                cl.push(out);
                sat.add(&cl, ClauseOrigin::Definition);
            }
            reg[ji] = Some(out);
        }
    }
    reg
}

/// Add clauses enforcing `sum(weight_i * x_i) <= bound`. Returns false if
/// the formula became trivially unsatisfiable.
pub fn add_upper_bound(sat: &mut Sat, items: &[(i64, Lit)], bound: i64) -> bool {
    if bound < 0 {
        // Even the empty sum (0) exceeds a negative bound.
        return sat.add_clause(&[]);
    }
    let (heavy, overflow) = build_counter(sat, items, bound);
    for l in heavy {
        if !sat.add_clause(&[l.negate()]) {
            return false;
        }
    }
    if let Some(o) = overflow {
        sat.add_clause(&[o.negate()])
    } else {
        true
    }
}

/// Add clauses enforcing `act -> (sum(weight_i * x_i) <= bound)`: the
/// constraint applies only in models where `act` is true. Used for
/// optimization probes that may be retracted by dropping the assumption.
pub fn add_upper_bound_guarded(sat: &mut Sat, items: &[(i64, Lit)], bound: i64, act: Lit) -> bool {
    add_upper_bound_guarded_with(sat, items, bound, act, ClauseOrigin::Definition)
}

/// [`add_upper_bound_guarded`] with an explicit origin for the
/// *assertion* clauses (the counter internals stay definitional).
fn add_upper_bound_guarded_with<S: CnfSink>(
    sat: &mut S,
    items: &[(i64, Lit)],
    bound: i64,
    act: Lit,
    origin: ClauseOrigin,
) -> bool {
    if bound < 0 {
        return sat.add(&[act.negate()], origin);
    }
    let (heavy, overflow) = build_counter(sat, items, bound);
    for l in heavy {
        if !sat.add(&[act.negate(), l.negate()], origin) {
            return false;
        }
    }
    if let Some(o) = overflow {
        sat.add(&[act.negate(), o.negate()], origin)
    } else {
        true
    }
}

/// Translate the ground program into `sat`.
pub fn translate(gp: &GroundProgram, sat: &mut Sat) -> Translation {
    translate_into(gp, sat)
}

/// Translate the ground program into a raw clause list with per-clause
/// [`ClauseOrigin`] provenance. Allocates variables in exactly the same
/// order as [`translate`], so the clauses (and the returned
/// [`Translation`]) are literal-for-literal identical to the solving
/// path's.
pub fn translate_collected(gp: &GroundProgram) -> (CollectedCnf, Translation) {
    let mut cnf = CollectedCnf {
        num_vars: 0,
        clauses: Vec::new(),
    };
    let tr = translate_into(gp, &mut cnf);
    (cnf, tr)
}

fn translate_into<S: CnfSink>(gp: &GroundProgram, sat: &mut S) -> Translation {
    let n = gp.atom_count();
    let atom_var: Vec<Var> = (0..n).map(|_| sat.new_var()).collect();
    let true_var = sat.new_var();
    sat.add(&[Lit::pos(true_var)], ClauseOrigin::Definition);

    // Supports per atom: disjuncts allowing the atom to be true.
    let mut supports: Vec<Vec<Lit>> = vec![Vec::new(); n];

    // Normal rules.
    let mut rule_body = Vec::with_capacity(gp.rules.len());
    for (ri, r) in gp.rules.iter().enumerate() {
        let beta = body_lit(sat, &atom_var, true_var, &r.pos, &r.neg);
        rule_body.push(beta);
        let head = Lit::pos(atom_var[r.head.0 as usize]);
        // body -> head
        sat.add(&[beta.negate(), head], ClauseOrigin::Rule(ri as u32));
        supports[r.head.0 as usize].push(beta);
    }

    // Choice instances.
    let mut choice_body = Vec::with_capacity(gp.choices.len());
    for (ci, c) in gp.choices.iter().enumerate() {
        let origin = ClauseOrigin::Choice(ci as u32);
        let beta = body_lit(sat, &atom_var, true_var, &c.pos, &c.neg);
        choice_body.push(beta);
        for &e in c.elements.iter() {
            // The body *permits* the element (no implication to true).
            supports[e.0 as usize].push(beta);
        }
        let elem_lits: Vec<(i64, Lit)> = c
            .elements
            .iter()
            .map(|&e| (1i64, Lit::pos(atom_var[e.0 as usize])))
            .collect();
        if let Some(upper) = c.upper {
            // beta -> at most `upper` of elements.
            add_upper_bound_guarded_with(sat, &elem_lits, upper as i64, beta, origin);
        }
        if let Some(lower) = c.lower {
            let lower = lower as i64;
            if lower > 0 {
                if (c.elements.len() as i64) < lower {
                    // Impossible to meet: forbid the body.
                    sat.add(&[beta.negate()], origin);
                } else if lower == 1 {
                    let mut cl: Vec<Lit> = vec![beta.negate()];
                    cl.extend(elem_lits.iter().map(|&(_, l)| l));
                    sat.add(&cl, origin);
                } else {
                    // sum >= lower  <=>  sum of negations <= n - lower.
                    let negs: Vec<(i64, Lit)> =
                        elem_lits.iter().map(|&(w, l)| (w, l.negate())).collect();
                    let bound = c.elements.len() as i64 - lower;
                    add_upper_bound_guarded_with(sat, &negs, bound, beta, origin);
                }
            }
        }
    }

    // Completion: every atom needs a support.
    for (i, sup) in supports.iter().enumerate() {
        let origin = ClauseOrigin::Completion(AtomId(i as u32));
        let a = Lit::pos(atom_var[i]);
        if sup.is_empty() {
            sat.add(&[a.negate()], origin);
        } else {
            let mut cl: Vec<Lit> = vec![a.negate()];
            cl.extend(sup.iter().copied());
            sat.add(&cl, origin);
        }
    }

    // Integrity constraints.
    for (ci, c) in gp.constraints.iter().enumerate() {
        let mut cl: Vec<Lit> = c
            .pos
            .iter()
            .map(|a| Lit::neg(atom_var[a.0 as usize]))
            .collect();
        cl.extend(c.neg.iter().map(|a| Lit::pos(atom_var[a.0 as usize])));
        sat.add(&cl, ClauseOrigin::Constraint(ci as u32));
    }

    // Minimize: one literal per distinct (priority, weight, tuple) that is
    // true iff any of its conditions holds.
    type MinKey = (i64, i64, Box<[crate::term::TermId]>);
    let mut groups: FxHashMap<MinKey, Vec<Lit>> = FxHashMap::default();
    let mut order: Vec<MinKey> = Vec::new();
    for m in &gp.minimize {
        let key = (m.priority, m.weight, m.tuple.clone());
        let beta = body_lit(sat, &atom_var, true_var, &m.pos, &m.neg);
        let entry = groups.entry(key.clone()).or_default();
        if entry.is_empty() {
            order.push(key);
        }
        entry.push(beta);
    }
    let mut per_priority: FxHashMap<i64, Vec<(i64, Lit)>> = FxHashMap::default();
    let mut priorities: Vec<i64> = Vec::new();
    for key in order {
        let conds = groups.remove(&key).expect("inserted above");
        let (priority, weight, _) = key;
        let tlit = if conds.len() == 1 {
            conds[0]
        } else {
            let t = Lit::pos(sat.new_var());
            for &c in &conds {
                sat.add(&[c.negate(), t], ClauseOrigin::Definition);
            }
            let mut cl: Vec<Lit> = vec![t.negate()];
            cl.extend(conds.iter().copied());
            sat.add(&cl, ClauseOrigin::Definition);
            t
        };
        if !per_priority.contains_key(&priority) {
            priorities.push(priority);
        }
        per_priority.entry(priority).or_default().push((weight, tlit));
    }
    priorities.sort_unstable_by(|a, b| b.cmp(a));
    let cost: Vec<(i64, Vec<(i64, Lit)>)> = priorities
        .into_iter()
        .map(|p| {
            let items = per_priority.remove(&p).expect("grouped above");
            (p, items)
        })
        .collect();

    Translation {
        atom_var,
        true_var,
        rule_body,
        choice_body,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdcl::SatResult;
    use crate::ground::ground;
    use crate::parser::parse_program;

    fn solve_text(text: &str) -> (GroundProgram, Sat, Translation, SatResult) {
        let gp = ground(&parse_program(text).unwrap()).unwrap();
        let mut sat = Sat::new();
        let tr = translate(&gp, &mut sat);
        let res = sat.solve();
        (gp, sat, tr, res)
    }

    fn truth(gp: &GroundProgram, sat: &Sat, tr: &Translation, atom: &str) -> bool {
        for i in 0..gp.atom_count() {
            if gp.store.format_atom(crate::term::AtomId(i as u32)) == atom {
                return sat.value(tr.atom_var[i]);
            }
        }
        panic!("atom {atom} not interned");
    }

    #[test]
    fn facts_and_rules_propagate() {
        let (gp, sat, tr, res) = solve_text("a. b :- a. c :- b.");
        assert_eq!(res, SatResult::Sat);
        assert!(truth(&gp, &sat, &tr, "a"));
        assert!(truth(&gp, &sat, &tr, "b"));
        assert!(truth(&gp, &sat, &tr, "c"));
    }

    #[test]
    fn unsupported_atoms_false() {
        // c is possible (its rule has a negated body) but must be false
        // because a holds; then b, supported only by c, is false too.
        let (gp, sat, tr, res) = solve_text("a. c :- not a. b :- c.");
        assert_eq!(res, SatResult::Sat);
        assert!(truth(&gp, &sat, &tr, "a"));
        assert!(!truth(&gp, &sat, &tr, "c"));
        assert!(!truth(&gp, &sat, &tr, "b"));
    }

    #[test]
    fn negation_as_failure() {
        let (gp, sat, tr, res) = solve_text("a. b :- not c. c :- not_present_pred.");
        assert_eq!(res, SatResult::Sat);
        assert!(truth(&gp, &sat, &tr, "b"));
        assert!(!truth(&gp, &sat, &tr, "c"));
    }

    #[test]
    fn constraint_excludes() {
        let (_, _, _, res) = solve_text("a. :- a.");
        assert_eq!(res, SatResult::Unsat);
    }

    #[test]
    fn choice_exactly_one() {
        let (gp, sat, tr, res) = solve_text(
            r#"
            n. cand("x"). cand("y").
            1 { pick(V) : cand(V) } 1 :- n.
        "#,
        );
        assert_eq!(res, SatResult::Sat);
        let x = truth(&gp, &sat, &tr, "pick(\"x\")");
        let y = truth(&gp, &sat, &tr, "pick(\"y\")");
        assert!(x ^ y, "exactly one of pick(x)/pick(y)");
    }

    #[test]
    fn choice_lower_bound_unmeetable_forbids_body() {
        // Choice needs 1 element but none exist; body atom n must still be
        // satisfiable... n is a fact, so the program is UNSAT.
        let (_, _, _, res) = solve_text("n. 1 { pick(V) : cand(V) } 1 :- n.");
        assert_eq!(res, SatResult::Unsat);
    }

    #[test]
    fn choice_upper_zero_forces_none() {
        let (gp, sat, tr, res) = solve_text(
            r#"
            n. cand("x").
            { pick(V) : cand(V) } 0 :- n.
        "#,
        );
        assert_eq!(res, SatResult::Sat);
        assert!(!truth(&gp, &sat, &tr, "pick(\"x\")"));
    }

    #[test]
    fn at_most_two_of_four() {
        let (gp, sat, tr, res) = solve_text(
            r#"
            n. c(1). c(2). c(3). c(4).
            { pick(V) : c(V) } 2 :- n.
            want(X) :- pick(X).
        "#,
        );
        assert_eq!(res, SatResult::Sat);
        let count = (1..=4)
            .filter(|i| truth(&gp, &sat, &tr, &format!("pick({i})")))
            .count();
        assert!(count <= 2);
    }

    #[test]
    fn at_least_two_of_three() {
        let (gp, sat, tr, res) = solve_text(
            r#"
            n. c(1). c(2). c(3).
            2 { pick(V) : c(V) } :- n.
        "#,
        );
        assert_eq!(res, SatResult::Sat);
        let count = (1..=3)
            .filter(|i| truth(&gp, &sat, &tr, &format!("pick({i})")))
            .count();
        assert!(count >= 2);
    }

    #[test]
    fn upper_bound_weighted() {
        // Standalone counter test: w = [3,2,2], bound 4.
        let mut sat = Sat::new();
        let xs: Vec<Lit> = (0..3).map(|_| Lit::pos(sat.new_var())).collect();
        let items = vec![(3, xs[0]), (2, xs[1]), (2, xs[2])];
        assert!(add_upper_bound(&mut sat, &items, 4));
        // Force all three: total 7 > 4 => unsat.
        for &x in &xs {
            sat.add_clause(&[x]);
        }
        assert_eq!(sat.solve(), SatResult::Unsat);
    }

    #[test]
    fn upper_bound_allows_within_budget() {
        let mut sat = Sat::new();
        let xs: Vec<Lit> = (0..3).map(|_| Lit::pos(sat.new_var())).collect();
        let items = vec![(3, xs[0]), (2, xs[1]), (2, xs[2])];
        assert!(add_upper_bound(&mut sat, &items, 4));
        sat.add_clause(&[xs[1]]);
        sat.add_clause(&[xs[2]]);
        assert_eq!(sat.solve(), SatResult::Sat);
        // x0 (weight 3) must be false: 2+2+3 = 7 > 4.
        assert!(!sat.value(xs[0].var()));
    }

    #[test]
    fn upper_bound_zero_forbids_everything_weighted() {
        let mut sat = Sat::new();
        let x = Lit::pos(sat.new_var());
        assert!(add_upper_bound(&mut sat, &[(5, x)], 0));
        assert_eq!(sat.solve(), SatResult::Sat);
        assert!(!sat.value(x.var()));
    }

    #[test]
    fn guarded_bound_only_applies_when_active() {
        let mut sat = Sat::new();
        let x = Lit::pos(sat.new_var());
        let y = Lit::pos(sat.new_var());
        let act = Lit::pos(sat.new_var());
        assert!(add_upper_bound_guarded(&mut sat, &[(1, x), (1, y)], 1, act));
        sat.add_clause(&[x]);
        sat.add_clause(&[y]);
        // Without act there is a model (act false).
        assert_eq!(sat.solve(), SatResult::Sat);
        assert!(!sat.value(act.var()));
        // Forcing act makes it UNSAT.
        sat.add_clause(&[act]);
        assert_eq!(sat.solve(), SatResult::Unsat);
    }

    #[test]
    fn cost_literals_track_conditions() {
        let (gp, sat, tr, res) = solve_text(
            r#"
            a.
            b :- a.
            #minimize { 10@1,"t1" : b }.
        "#,
        );
        assert_eq!(res, SatResult::Sat);
        assert_eq!(tr.cost.len(), 1);
        let (prio, items) = &tr.cost[0];
        assert_eq!(*prio, 1);
        assert_eq!(items.len(), 1);
        // b holds, so the cost literal must be true.
        let _ = gp;
        assert_eq!(items[0].0, 10);
        let l = items[0].1;
        let val = sat.value(l.var()) != l.is_neg();
        assert!(val);
    }
}
