//! Parser for the ASP text fragment used by the concretizer's logic
//! program (a subset of Clingo's input language).
//!
//! Supported statements:
//!
//! ```text
//! fact(a, "str", 5).
//! head(X) :- body(X), not other(X), X != "y".
//! :- forbidden(X).
//! 1 { pick(V) : candidate(V) } 1 :- node(N).
//! { reuse(H) : installed(H) } 1 :- node(N).
//! #minimize { 100@2,Node : build(Node) }.
//! % comments run to end of line
//! ```

use crate::program::{BodyElem, ChoiceElem, CmpOp, Head, MinimizeElem, Program, Rule};
use crate::term::{Atom, Term};
use crate::{AspError, Result};
use spackle_spec::Sym;

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(Sym),
    Var(Sym),
    Int(i64),
    Str(Sym),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Dot,
    Colon,
    If, // :-
    At,
    Cmp(CmpOp),
    Minimize,
    Not,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> AspError {
        AspError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'%' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'(' => {
                    self.pos += 1;
                    out.push((start, Tok::LParen));
                }
                b')' => {
                    self.pos += 1;
                    out.push((start, Tok::RParen));
                }
                b'{' => {
                    self.pos += 1;
                    out.push((start, Tok::LBrace));
                }
                b'}' => {
                    self.pos += 1;
                    out.push((start, Tok::RBrace));
                }
                b',' => {
                    self.pos += 1;
                    out.push((start, Tok::Comma));
                }
                b';' => {
                    self.pos += 1;
                    out.push((start, Tok::Semi));
                }
                b'.' => {
                    self.pos += 1;
                    out.push((start, Tok::Dot));
                }
                b'@' => {
                    self.pos += 1;
                    out.push((start, Tok::At));
                }
                b':' => {
                    if self.src.get(self.pos + 1) == Some(&b'-') {
                        self.pos += 2;
                        out.push((start, Tok::If));
                    } else {
                        self.pos += 1;
                        out.push((start, Tok::Colon));
                    }
                }
                b'=' => {
                    self.pos += 1;
                    out.push((start, Tok::Cmp(CmpOp::Eq)));
                }
                b'!' => {
                    if self.src.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        out.push((start, Tok::Cmp(CmpOp::Ne)));
                    } else {
                        return Err(self.err("expected != after !"));
                    }
                }
                b'<' => {
                    if self.src.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        out.push((start, Tok::Cmp(CmpOp::Le)));
                    } else {
                        self.pos += 1;
                        out.push((start, Tok::Cmp(CmpOp::Lt)));
                    }
                }
                b'>' => {
                    if self.src.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        out.push((start, Tok::Cmp(CmpOp::Ge)));
                    } else {
                        self.pos += 1;
                        out.push((start, Tok::Cmp(CmpOp::Gt)));
                    }
                }
                b'#' => {
                    self.pos += 1;
                    let word = self.read_word();
                    if word == "minimize" {
                        out.push((start, Tok::Minimize));
                    } else {
                        return Err(self.err(format!("unsupported directive #{word}")));
                    }
                }
                b'"' => {
                    self.pos += 1;
                    let s = self.read_string()?;
                    out.push((start, Tok::Str(Sym::intern(&s))));
                }
                b'0'..=b'9' => {
                    let n = self.read_int()?;
                    out.push((start, Tok::Int(n)));
                }
                b'-' if matches!(self.src.get(self.pos + 1), Some(b'0'..=b'9')) => {
                    self.pos += 1;
                    let n = self.read_int()?;
                    out.push((start, Tok::Int(-n)));
                }
                b'a'..=b'z' => {
                    let w = self.read_word();
                    if w == "not" {
                        out.push((start, Tok::Not));
                    } else {
                        out.push((start, Tok::Ident(Sym::intern(&w))));
                    }
                }
                b'A'..=b'Z' | b'_' => {
                    let w = self.read_word();
                    out.push((start, Tok::Var(Sym::intern(&w))));
                }
                other => {
                    return Err(self.err(format!("unexpected character {:?}", other as char)));
                }
            }
        }
        Ok(out)
    }

    fn read_word(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn read_int(&mut self) -> Result<i64> {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("invalid integer"))
    }

    fn read_string(&mut self) -> Result<String> {
        let mut s = String::new();
        loop {
            match self.src.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.src.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        _ => return Err(self.err("bad escape in string")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    s.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(usize::MAX)
    }

    fn err(&self, message: impl Into<String>) -> AspError {
        AspError::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        match self.bump() {
            Some(t) if t == tok => Ok(()),
            other => Err(self.err(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    fn parse_program(&mut self) -> Result<Program> {
        let mut prog = Program::new();
        while self.peek().is_some() {
            if self.peek() == Some(&Tok::Minimize) {
                self.bump();
                let elems = self.parse_minimize_body()?;
                prog.minimize.extend(elems);
            } else {
                prog.rules.push(self.parse_rule()?);
            }
        }
        Ok(prog)
    }

    fn parse_rule(&mut self) -> Result<Rule> {
        let head = match self.peek() {
            Some(Tok::If) => Head::None,
            Some(Tok::LBrace) | Some(Tok::Int(_))
                if matches!(self.peek(), Some(Tok::LBrace))
                    || matches!(self.peek2(), Some(Tok::LBrace)) =>
            {
                self.parse_choice()?
            }
            _ => Head::Atom(self.parse_atom()?),
        };
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::If) {
            self.bump();
            body = self.parse_body(&Tok::Dot)?;
        }
        self.expect(Tok::Dot)?;
        Ok(Rule { head, body })
    }

    fn parse_choice(&mut self) -> Result<Head> {
        let lower = if let Some(Tok::Int(n)) = self.peek() {
            let n = *n;
            self.bump();
            Some(u32::try_from(n).map_err(|_| self.err("negative choice bound"))?)
        } else {
            None
        };
        self.expect(Tok::LBrace)?;
        let mut elements = Vec::new();
        loop {
            let atom = self.parse_atom()?;
            let mut condition = Vec::new();
            if self.peek() == Some(&Tok::Colon) {
                self.bump();
                // Condition elements are comma-separated and end at ; or }.
                loop {
                    condition.push(self.parse_body_elem()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            elements.push(ChoiceElem { atom, condition });
            match self.peek() {
                Some(Tok::Semi) => {
                    self.bump();
                }
                Some(Tok::RBrace) => break,
                other => return Err(self.err(format!("expected ; or }} in choice, got {other:?}"))),
            }
        }
        self.expect(Tok::RBrace)?;
        let upper = if let Some(Tok::Int(n)) = self.peek() {
            let n = *n;
            self.bump();
            Some(u32::try_from(n).map_err(|_| self.err("negative choice bound"))?)
        } else {
            None
        };
        Ok(Head::Choice {
            lower,
            upper,
            elements,
        })
    }

    /// Parse a comma-separated body; stops before `end` (not consumed).
    fn parse_body(&mut self, end: &Tok) -> Result<Vec<BodyElem>> {
        let mut out = Vec::new();
        loop {
            out.push(self.parse_body_elem()?);
            if self.peek() == Some(&Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() != Some(end) && !matches!(end, Tok::Dot) {
            return Err(self.err(format!("expected {end:?} after body")));
        }
        Ok(out)
    }

    fn parse_body_elem(&mut self) -> Result<BodyElem> {
        if self.peek() == Some(&Tok::Not) {
            self.bump();
            return Ok(BodyElem::Neg(self.parse_atom()?));
        }
        let term = self.parse_term()?;
        if let Some(Tok::Cmp(op)) = self.peek() {
            let op = *op;
            self.bump();
            let rhs = self.parse_term()?;
            return Ok(BodyElem::Cmp(term, op, rhs));
        }
        // Otherwise the term must be atom-shaped.
        match term {
            Term::Sym(p) => Ok(BodyElem::Pos(Atom {
                pred: p,
                args: vec![],
            })),
            Term::Func(p, args) => Ok(BodyElem::Pos(Atom { pred: p, args })),
            other => Err(self.err(format!("expected atom or comparison, found term {other}"))),
        }
    }

    fn parse_atom(&mut self) -> Result<Atom> {
        match self.parse_term()? {
            Term::Sym(p) => Ok(Atom {
                pred: p,
                args: vec![],
            }),
            Term::Func(p, args) => Ok(Atom { pred: p, args }),
            other => Err(self.err(format!("expected atom, found {other}"))),
        }
    }

    fn parse_term(&mut self) -> Result<Term> {
        match self.bump() {
            Some(Tok::Int(n)) => Ok(Term::Int(n)),
            Some(Tok::Str(s)) => Ok(Term::Str(s)),
            Some(Tok::Var(v)) => Ok(Term::Var(v)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.parse_term()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Term::Func(name, args))
                } else {
                    Ok(Term::Sym(name))
                }
            }
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }

    /// After `#minimize`: `{ elem ; elem ; ... }.`
    fn parse_minimize_body(&mut self) -> Result<Vec<MinimizeElem>> {
        self.expect(Tok::LBrace)?;
        let mut elems = Vec::new();
        loop {
            let weight = self.parse_term()?;
            let priority = if self.peek() == Some(&Tok::At) {
                self.bump();
                self.parse_term()?
            } else {
                Term::Int(0)
            };
            let mut terms = Vec::new();
            while self.peek() == Some(&Tok::Comma) {
                self.bump();
                terms.push(self.parse_term()?);
            }
            let mut condition = Vec::new();
            if self.peek() == Some(&Tok::Colon) {
                self.bump();
                loop {
                    condition.push(self.parse_body_elem()?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            elems.push(MinimizeElem {
                weight,
                priority,
                terms,
                condition,
            });
            match self.peek() {
                Some(Tok::Semi) => {
                    self.bump();
                }
                Some(Tok::RBrace) => break,
                other => {
                    return Err(self.err(format!("expected ; or }} in #minimize, got {other:?}")))
                }
            }
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Dot)?;
        Ok(elems)
    }
}

/// Parse a complete program from text.
pub fn parse_program(text: &str) -> Result<Program> {
    let toks = Lexer::new(text).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_program()
}

/// Parse a complete program, additionally returning the byte offset of
/// each rule's first token into `text`, indexed exactly like the
/// returned `Program::rules`. `#minimize` statements contribute no
/// offset (they never appear in unsat cores). The parsed program is
/// identical to [`parse_program`]'s.
pub fn parse_program_spanned(text: &str) -> Result<(Program, Vec<usize>)> {
    let toks = Lexer::new(text).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let mut prog = Program::new();
    let mut offsets = Vec::new();
    while p.peek().is_some() {
        let off = p.offset();
        if p.peek() == Some(&Tok::Minimize) {
            p.bump();
            let elems = p.parse_minimize_body()?;
            prog.minimize.extend(elems);
        } else {
            prog.rules.push(p.parse_rule()?);
            offsets.push(off);
        }
    }
    Ok((prog, offsets))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fact() {
        let p = parse_program(r#"node("example")."#).unwrap();
        assert_eq!(p.rules.len(), 1);
        assert!(p.rules[0].body.is_empty());
        match &p.rules[0].head {
            Head::Atom(a) => {
                assert_eq!(a.pred.as_str(), "node");
                assert_eq!(a.args, vec![Term::str("example")]);
            }
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn parse_rule_with_negation_and_cmp() {
        let p = parse_program("b(X) :- a(X), not c(X), X != 3.").unwrap();
        let r = &p.rules[0];
        assert_eq!(r.body.len(), 3);
        assert!(matches!(r.body[1], BodyElem::Neg(_)));
        assert!(matches!(r.body[2], BodyElem::Cmp(_, CmpOp::Ne, _)));
    }

    #[test]
    fn parse_constraint() {
        let p = parse_program(":- bad(X).").unwrap();
        assert!(matches!(p.rules[0].head, Head::None));
    }

    #[test]
    fn parse_choice_bounds() {
        let p = parse_program(
            "1 { attr(\"version\", node(P), V) : pkg_fact(P, version_declared(V)) } 1 :- node(P).",
        )
        .unwrap();
        match &p.rules[0].head {
            Head::Choice {
                lower,
                upper,
                elements,
            } => {
                assert_eq!((*lower, *upper), (Some(1), Some(1)));
                assert_eq!(elements.len(), 1);
                assert_eq!(elements[0].condition.len(), 1);
            }
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn parse_upper_only_choice() {
        let p = parse_program("{ reuse(H) : installed(H) } 1 :- node(N).").unwrap();
        match &p.rules[0].head {
            Head::Choice { lower, upper, .. } => {
                assert_eq!(*lower, None);
                assert_eq!(*upper, Some(1));
            }
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn parse_unbounded_choice() {
        let p = parse_program("{ pick(X) : cand(X) }.").unwrap();
        match &p.rules[0].head {
            Head::Choice { lower, upper, .. } => {
                assert_eq!((*lower, *upper), (None, None));
            }
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn parse_minimize() {
        let p = parse_program("#minimize { 100@2,Node : build(Node) }.").unwrap();
        assert_eq!(p.minimize.len(), 1);
        let m = &p.minimize[0];
        assert_eq!(m.weight, Term::Int(100));
        assert_eq!(m.priority, Term::Int(2));
        assert_eq!(m.terms.len(), 1);
        assert_eq!(m.condition.len(), 1);
    }

    #[test]
    fn parse_multiple_minimize_elems() {
        let p =
            parse_program("#minimize { 1@1,X : a(X) ; 2@1,Y : b(Y) }.").unwrap();
        assert_eq!(p.minimize.len(), 2);
    }

    #[test]
    fn parse_comments_and_whitespace() {
        let p = parse_program(
            "% a comment\n  a. % trailing\n% full line\nb :- a.\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn parse_nested_terms() {
        let p = parse_program(r#"attr("depends_on", node("a"), node("b"), "link-run")."#).unwrap();
        match &p.rules[0].head {
            Head::Atom(a) => assert_eq!(a.args.len(), 4),
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn parse_string_escapes() {
        let p = parse_program(r#"a("he said \"hi\"")."#).unwrap();
        match &p.rules[0].head {
            Head::Atom(a) => match &a.args[0] {
                Term::Str(s) => assert_eq!(s.as_str(), "he said \"hi\""),
                other => panic!("unexpected arg {other:?}"),
            },
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn parse_negative_int() {
        let p = parse_program("a(-5).").unwrap();
        match &p.rules[0].head {
            Head::Atom(a) => assert_eq!(a.args[0], Term::Int(-5)),
            other => panic!("unexpected head {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_program("a(").is_err());
        assert!(parse_program("a.b").is_err());
        assert!(parse_program(":- .").is_err());
        assert!(parse_program("#maximize { 1@1 : a }.").is_err());
        assert!(parse_program(r#"a("unterminated"#).is_err());
        assert!(parse_program("a :- X ! 3.").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let text = r#"
            node("example").
            attr("version", node("example"), "1.1.0") :- node("example"), not masked("example").
            1 { pick(V) : declared(V) } 1 :- node(N).
            :- conflict(A, B), A != B.
        "#;
        let once = parse_program(text).unwrap();
        let printed = once.to_string();
        let twice = parse_program(&printed).unwrap();
        assert_eq!(once.rules, twice.rules);
    }

    #[test]
    fn paper_fig4a_can_splice_rule() {
        // The compiled can_splice rule from Fig 4a parses.
        let text = r#"
            can_splice(node("example"),"example-ng",Hash) :-
                installed_hash("example-ng",Hash),
                attr("node",node("example")),
                hash_attr(Hash,"version","example-ng","2.3.2"),
                attr("version",node("example"),"1.1.0"),
                hash_attr(Hash,"variant","example-ng","compat","True"),
                attr("variant",node("example"),"compat","True").
        "#;
        let p = parse_program(text).unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].body.len(), 6);
    }
}
