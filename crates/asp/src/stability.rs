//! Model-guided stability check (Gelfond–Lifschitz).
//!
//! The CNF translation captures the *completion* of the ground program,
//! whose models can include self-supported positive loops that are not
//! stable models. After each SAT model we compute the least model of the
//! program's reduct w.r.t. the candidate; atoms in the candidate but not
//! in the least model form an *unfounded set*, which the solve loop turns
//! into loop clauses (CEGAR). Ground programs whose positive dependency
//! graph is acyclic — like the concretizer's, where ground recursion
//! follows acyclic package DAGs — always pass on the first try.

use crate::ground::GroundProgram;
use crate::term::AtomId;
use rustc_hash::{FxHashMap, FxHashSet};

/// Result of a stability check.
pub enum Stability {
    /// The candidate is a stable model.
    Stable,
    /// The candidate is not stable; the unfounded atoms are returned.
    Unfounded(Vec<AtomId>),
}

/// Check whether `model` (the set of true atoms) is a stable model of
/// `gp`.
///
/// Computes the least model `L` of the reduct: a normal rule fires when
/// its positive body is in `L` and no negated atom is in `model`; a
/// choice instance justifies exactly those of its elements that are in
/// `model`, when its body fires. The candidate is stable iff every true
/// atom is in `L`.
pub fn check_stability(gp: &GroundProgram, model: &FxHashSet<AtomId>) -> Stability {
    let mut least: FxHashSet<AtomId> = FxHashSet::default();
    let mut queue: Vec<AtomId> = Vec::new();

    // Rule activation tracking: count distinct positive atoms still
    // missing from `least`; fire when zero.
    #[derive(Clone)]
    enum Deriver {
        Rule(usize),
        Choice(usize),
    }
    let mut waiting: FxHashMap<AtomId, Vec<usize>> = FxHashMap::default();
    let mut missing: Vec<usize> = Vec::new();
    let mut derivers: Vec<Deriver> = Vec::new();

    let add_deriver = |pos: &[AtomId],
                           neg: &[AtomId],
                           d: Deriver,
                           waiting: &mut FxHashMap<AtomId, Vec<usize>>,
                           missing: &mut Vec<usize>,
                           derivers: &mut Vec<Deriver>|
     -> Option<usize> {
        // Reduct: drop the rule if any negated atom is true in the model.
        if neg.iter().any(|a| model.contains(a)) {
            return None;
        }
        let idx = derivers.len();
        derivers.push(d);
        let unique: FxHashSet<AtomId> = pos.iter().copied().collect();
        missing.push(unique.len());
        for a in unique {
            waiting.entry(a).or_default().push(idx);
        }
        Some(idx)
    };

    let mut fire: Vec<usize> = Vec::new(); // derivers with empty bodies
    for (ri, r) in gp.rules.iter().enumerate() {
        if let Some(idx) = add_deriver(
            &r.pos,
            &r.neg,
            Deriver::Rule(ri),
            &mut waiting,
            &mut missing,
            &mut derivers,
        ) {
            if missing[idx] == 0 {
                fire.push(idx);
            }
        }
    }
    for (ci, c) in gp.choices.iter().enumerate() {
        if let Some(idx) = add_deriver(
            &c.pos,
            &c.neg,
            Deriver::Choice(ci),
            &mut waiting,
            &mut missing,
            &mut derivers,
        ) {
            if missing[idx] == 0 {
                fire.push(idx);
            }
        }
    }

    let derive = |idx: usize,
                      least: &mut FxHashSet<AtomId>,
                      queue: &mut Vec<AtomId>,
                      derivers: &Vec<Deriver>| {
        match derivers[idx] {
            Deriver::Rule(ri) => {
                let h = gp.rules[ri].head;
                if least.insert(h) {
                    queue.push(h);
                }
            }
            Deriver::Choice(ci) => {
                // GL reduct of a choice: chosen elements become facts.
                for &e in gp.choices[ci].elements.iter() {
                    if model.contains(&e) && least.insert(e) {
                        queue.push(e);
                    }
                }
            }
        }
    };

    for idx in fire {
        derive(idx, &mut least, &mut queue, &derivers);
    }
    let mut satisfied: FxHashMap<usize, usize> = FxHashMap::default();
    while let Some(a) = queue.pop() {
        if let Some(idxs) = waiting.get(&a) {
            for &idx in idxs {
                let done = {
                    let got = satisfied.entry(idx).or_insert(0);
                    *got += 1;
                    *got == missing[idx]
                };
                if done {
                    derive(idx, &mut least, &mut queue, &derivers);
                }
            }
        }
    }

    let unfounded: Vec<AtomId> = model
        .iter()
        .copied()
        .filter(|a| !least.contains(a))
        .collect();
    if unfounded.is_empty() {
        Stability::Stable
    } else {
        Stability::Unfounded(unfounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::parser::parse_program;

    fn gp_of(text: &str) -> GroundProgram {
        ground(&parse_program(text).unwrap()).unwrap()
    }

    fn atoms(gp: &GroundProgram, names: &[&str]) -> FxHashSet<AtomId> {
        let mut out = FxHashSet::default();
        for name in names {
            let found = (0..gp.atom_count() as u32)
                .map(AtomId)
                .find(|&a| gp.store.format_atom(a) == *name)
                .unwrap_or_else(|| panic!("atom {name} not interned"));
            out.insert(found);
        }
        out
    }

    #[test]
    fn facts_and_consequences_are_stable() {
        let gp = gp_of("a. b :- a.");
        let m = atoms(&gp, &["a", "b"]);
        assert!(matches!(check_stability(&gp, &m), Stability::Stable));
    }

    #[test]
    fn self_supported_loop_is_unfounded() {
        // p gives a/b a grounding path, but with p false the completion
        // still admits the self-supported {a, b} — which is not stable.
        let gp = gp_of(
            r#"
            { p }.
            a :- p.
            a :- b.
            b :- a.
        "#,
        );
        let m = atoms(&gp, &["a", "b"]); // p false
        match check_stability(&gp, &m) {
            Stability::Unfounded(u) => assert_eq!(u.len(), 2),
            Stability::Stable => panic!("loop model must be unfounded"),
        }
        // With p chosen, {p, a, b} is stable (a externally supported).
        let m2 = atoms(&gp, &["p", "a", "b"]);
        assert!(matches!(check_stability(&gp, &m2), Stability::Stable));
        // The empty model is stable too.
        let empty = FxHashSet::default();
        assert!(matches!(check_stability(&gp, &empty), Stability::Stable));
    }

    #[test]
    fn loop_with_external_support_is_stable() {
        let gp = gp_of("a :- b. b :- a. b :- c. c.");
        let m = atoms(&gp, &["a", "b", "c"]);
        assert!(matches!(check_stability(&gp, &m), Stability::Stable));
    }

    #[test]
    fn negation_reduct() {
        // b :- not c. With c false, b must hold; {b} is stable, {} isn't
        // checked here (it's not a completion model anyway).
        let gp = gp_of("b :- not c.");
        let m = atoms(&gp, &["b"]);
        assert!(matches!(check_stability(&gp, &m), Stability::Stable));
    }

    #[test]
    fn chosen_elements_are_justified() {
        let gp = gp_of("f(\"x\"). { p(V) : f(V) }.");
        let m = atoms(&gp, &["f(\"x\")", "p(\"x\")"]);
        assert!(matches!(check_stability(&gp, &m), Stability::Stable));
        let m2 = atoms(&gp, &["f(\"x\")"]);
        assert!(matches!(check_stability(&gp, &m2), Stability::Stable));
    }

    #[test]
    fn choice_behind_false_body_cannot_justify() {
        // g/h form a loop reachable only through g0; with g0 false the
        // candidate's g, h and the choice-derived p("x") are unfounded.
        let gp = gp_of(
            r#"
            f("x").
            { g0 }.
            g :- g0.
            g :- h.
            h :- g.
            { p(V) : f(V) } :- g.
        "#,
        );
        let m = atoms(&gp, &["f(\"x\")", "p(\"x\")", "g", "h"]); // g0 false
        match check_stability(&gp, &m) {
            Stability::Unfounded(u) => assert_eq!(u.len(), 3), // g, h, p(x)
            Stability::Stable => panic!("must be unfounded"),
        }
    }
}
