//! Terms and atoms, both symbolic (possibly containing variables) and
//! ground (hash-consed into integer ids for the solver pipeline).

use rustc_hash::FxHashMap;
use spackle_spec::Sym;
use std::cmp::Ordering;
use std::fmt;

/// A (possibly non-ground) term.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// Integer constant.
    Int(i64),
    /// Symbolic constant (`linux`, `x153`).
    Sym(Sym),
    /// Quoted string constant (`"example"`). Distinct from `Sym` per ASP
    /// semantics.
    Str(Sym),
    /// Variable (`Name`, `Hash`). Uppercase-initial in the text syntax.
    Var(Sym),
    /// Compound term (`node("example")`).
    Func(Sym, Vec<Term>),
}

impl Term {
    /// Convenience: a quoted-string term.
    pub fn str(s: &str) -> Term {
        Term::Str(Sym::intern(s))
    }
    /// Convenience: a symbolic-constant term.
    pub fn sym(s: &str) -> Term {
        Term::Sym(Sym::intern(s))
    }
    /// Convenience: a variable term.
    pub fn var(s: &str) -> Term {
        Term::Var(Sym::intern(s))
    }
    /// Convenience: a compound term.
    pub fn func(name: &str, args: Vec<Term>) -> Term {
        Term::Func(Sym::intern(name), args)
    }

    /// True when the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Func(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }

    /// Collect variables into `out` (with duplicates).
    pub fn collect_vars(&self, out: &mut Vec<Sym>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Func(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(i) => write!(f, "{i}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Str(s) => write!(f, "{:?}", s.as_str()),
            Term::Var(v) => write!(f, "{v}"),
            Term::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A (possibly non-ground) atom: predicate applied to terms.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: Sym,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: Sym::intern(pred),
            args,
        }
    }

    /// True when all arguments are ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Collect variables into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Sym>) {
        for a in &self.args {
            a.collect_vars(out);
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred)?;
        if !self.args.is_empty() {
            f.write_str("(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{a}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// Hash-consed ground term id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

/// Hash-consed ground atom id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AtomId(pub u32);

/// Interned ground term payload.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum GroundTerm {
    /// Integer constant.
    Int(i64),
    /// Symbolic constant.
    Sym(Sym),
    /// Quoted-string constant.
    Str(Sym),
    /// Compound term over interned children.
    Func(Sym, Box<[TermId]>),
}

/// Hash-consing store for ground terms and atoms.
///
/// Every distinct ground term/atom gets a dense integer id; the grounder,
/// CNF translator, and solver all speak in these ids, so equality is `==`
/// on a `u32` and maps are keyed by integers.
#[derive(Clone, Default)]
pub struct GroundStore {
    terms: Vec<GroundTerm>,
    term_map: FxHashMap<GroundTerm, TermId>,
    atoms: Vec<(Sym, Box<[TermId]>)>,
    atom_map: FxHashMap<(Sym, Box<[TermId]>), AtomId>,
}

impl GroundStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a ground term payload.
    pub fn term(&mut self, t: GroundTerm) -> TermId {
        if let Some(&id) = self.term_map.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.term_map.insert(t, id);
        id
    }

    /// Intern a fully ground [`Term`] tree. Panics if it has variables.
    pub fn intern_term(&mut self, t: &Term) -> TermId {
        match t {
            Term::Int(i) => self.term(GroundTerm::Int(*i)),
            Term::Sym(s) => self.term(GroundTerm::Sym(*s)),
            Term::Str(s) => self.term(GroundTerm::Str(*s)),
            Term::Var(v) => panic!("intern_term on non-ground term: variable {v}"),
            Term::Func(name, args) => {
                let kids: Box<[TermId]> = args.iter().map(|a| self.intern_term(a)).collect();
                self.term(GroundTerm::Func(*name, kids))
            }
        }
    }

    /// Intern a ground atom.
    pub fn atom(&mut self, pred: Sym, args: Box<[TermId]>) -> AtomId {
        let key = (pred, args);
        if let Some(&id) = self.atom_map.get(&key) {
            return id;
        }
        let id = AtomId(self.atoms.len() as u32);
        self.atoms.push(key.clone());
        self.atom_map.insert(key, id);
        id
    }

    /// Intern a fully ground [`Atom`].
    pub fn intern_atom(&mut self, a: &Atom) -> AtomId {
        let args: Box<[TermId]> = a.args.iter().map(|t| self.intern_term(t)).collect();
        self.atom(a.pred, args)
    }

    /// Look up a ground term payload.
    pub fn term_data(&self, id: TermId) -> &GroundTerm {
        &self.terms[id.0 as usize]
    }

    /// Look up a ground atom (predicate, args).
    pub fn atom_data(&self, id: AtomId) -> (Sym, &[TermId]) {
        let (p, args) = &self.atoms[id.0 as usize];
        (*p, args)
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Feed the full interning tables (terms then atoms, in id order)
    /// into `h`. Equal digests mean ids decode identically in both
    /// stores, which is what ground-program content fingerprints need.
    pub fn hash_content(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.terms.hash(h);
        self.atoms.hash(h);
    }

    /// Look up an atom id without interning.
    pub fn find_atom(&self, pred: Sym, args: &[TermId]) -> Option<AtomId> {
        self.atom_map.get(&(pred, args.into())).copied()
    }

    /// Look up a term id without interning. `None` means the term has
    /// never been interned — so in particular no interned atom can
    /// contain it.
    pub fn find_term(&self, t: &GroundTerm) -> Option<TermId> {
        self.term_map.get(t).copied()
    }

    /// Total order on ground terms: ints < syms < strings < funcs, each
    /// group internally ordered. Used by comparison builtins.
    pub fn compare(&self, a: TermId, b: TermId) -> Ordering {
        fn rank(t: &GroundTerm) -> u8 {
            match t {
                GroundTerm::Int(_) => 0,
                GroundTerm::Sym(_) => 1,
                GroundTerm::Str(_) => 2,
                GroundTerm::Func(..) => 3,
            }
        }
        if a == b {
            return Ordering::Equal;
        }
        let (ta, tb) = (self.term_data(a), self.term_data(b));
        match (ta, tb) {
            (GroundTerm::Int(x), GroundTerm::Int(y)) => x.cmp(y),
            (GroundTerm::Sym(x), GroundTerm::Sym(y)) => x.cmp(y),
            (GroundTerm::Str(x), GroundTerm::Str(y)) => x.cmp(y),
            (GroundTerm::Func(nx, ax), GroundTerm::Func(ny, ay)) => nx
                .cmp(ny)
                .then_with(|| ax.len().cmp(&ay.len()))
                .then_with(|| {
                    for (x, y) in ax.iter().zip(ay.iter()) {
                        match self.compare(*x, *y) {
                            Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    Ordering::Equal
                }),
            _ => rank(ta).cmp(&rank(tb)),
        }
    }

    /// Render a ground term.
    pub fn format_term(&self, id: TermId) -> String {
        match self.term_data(id) {
            GroundTerm::Int(i) => i.to_string(),
            GroundTerm::Sym(s) => s.as_str().to_string(),
            GroundTerm::Str(s) => format!("{:?}", s.as_str()),
            GroundTerm::Func(name, args) => {
                let inner: Vec<String> = args.iter().map(|&a| self.format_term(a)).collect();
                format!("{name}({})", inner.join(","))
            }
        }
    }

    /// Render a ground atom.
    pub fn format_atom(&self, id: AtomId) -> String {
        let (pred, args) = self.atom_data(id);
        if args.is_empty() {
            pred.as_str().to_string()
        } else {
            let inner: Vec<String> = args.iter().map(|&a| self.format_term(a)).collect();
            format!("{pred}({})", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_groundness() {
        assert!(Term::Int(3).is_ground());
        assert!(Term::str("x").is_ground());
        assert!(!Term::var("X").is_ground());
        assert!(!Term::func("node", vec![Term::var("X")]).is_ground());
        assert!(Term::func("node", vec![Term::str("a")]).is_ground());
    }

    #[test]
    fn interning_dedupes() {
        let mut s = GroundStore::new();
        let a = s.intern_term(&Term::func("node", vec![Term::str("hdf5")]));
        let b = s.intern_term(&Term::func("node", vec![Term::str("hdf5")]));
        assert_eq!(a, b);
        let c = s.intern_term(&Term::func("node", vec![Term::str("zlib")]));
        assert_ne!(a, c);
    }

    #[test]
    fn atom_interning() {
        let mut s = GroundStore::new();
        let a1 = s.intern_atom(&Atom::new("p", vec![Term::Int(1)]));
        let a2 = s.intern_atom(&Atom::new("p", vec![Term::Int(1)]));
        let a3 = s.intern_atom(&Atom::new("p", vec![Term::Int(2)]));
        assert_eq!(a1, a2);
        assert_ne!(a1, a3);
        assert_eq!(s.atom_count(), 2);
    }

    #[test]
    fn sym_and_str_distinct() {
        let mut s = GroundStore::new();
        let a = s.intern_term(&Term::sym("abc"));
        let b = s.intern_term(&Term::str("abc"));
        assert_ne!(a, b);
    }

    #[test]
    fn compare_total_order() {
        let mut s = GroundStore::new();
        let i1 = s.intern_term(&Term::Int(1));
        let i2 = s.intern_term(&Term::Int(2));
        let sym = s.intern_term(&Term::sym("a"));
        let st = s.intern_term(&Term::str("a"));
        let f = s.intern_term(&Term::func("f", vec![Term::Int(1)]));
        assert_eq!(s.compare(i1, i2), Ordering::Less);
        assert_eq!(s.compare(i2, sym), Ordering::Less);
        assert_eq!(s.compare(sym, st), Ordering::Less);
        assert_eq!(s.compare(st, f), Ordering::Less);
        assert_eq!(s.compare(f, f), Ordering::Equal);
    }

    #[test]
    fn format_roundtripish() {
        let mut s = GroundStore::new();
        let id = s.intern_atom(&Atom::new(
            "attr",
            vec![
                Term::str("version"),
                Term::func("node", vec![Term::str("example")]),
                Term::str("1.1.0"),
            ],
        ));
        assert_eq!(
            s.format_atom(id),
            "attr(\"version\",node(\"example\"),\"1.1.0\")"
        );
    }

    #[test]
    fn display_symbolic() {
        let a = Atom::new(
            "can_splice",
            vec![
                Term::func("node", vec![Term::var("Name")]),
                Term::str("mpich"),
                Term::var("Hash"),
            ],
        );
        assert_eq!(a.to_string(), "can_splice(node(Name),\"mpich\",Hash)");
    }
}
