//! Predicate-level static analysis over non-ground programs: the
//! predicate dependency graph, derivability and relevance closures, and
//! stratification of the negation fragment.
//!
//! Shared by the grounder's dead-rule pruning
//! ([`Program::prune_unreachable`](crate::Program::prune_unreachable))
//! and the `spackle-audit` static analyzer. Everything here works on the
//! *predicate* abstraction of the program — `(name, arity)` pairs — so
//! the closures are cheap over-approximations of what the grounder's
//! possible-atom closure computes at the ground level:
//!
//! * a predicate outside [`derivable_preds`] can never have a true (or
//!   even possible) ground atom, so rules positively depending on it can
//!   never fire;
//! * a predicate outside [`relevant_preds`] cannot influence the goal
//!   predicates, any constraint, any choice, or any `#minimize` cost.

use crate::program::{BodyElem, Head, Program};
use crate::term::Atom;
use spackle_spec::Sym;
use std::collections::{BTreeMap, BTreeSet};

/// A predicate key: name plus arity.
pub type PredKey = (Sym, usize);

/// The predicate key of an atom.
pub fn pred_of(atom: &Atom) -> PredKey {
    (atom.pred, atom.args.len())
}

/// Render a predicate key as `name/arity`.
pub fn pred_name(p: &PredKey) -> String {
    format!("{}/{}", p.0, p.1)
}

/// Whether a `head -> body` dependency runs through negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Positive body literal.
    Pos,
    /// Negated body literal (`not atom`).
    Neg,
}

/// The predicate dependency graph of a program.
///
/// Nodes are every predicate occurring anywhere (heads, bodies, choice
/// elements and conditions, constraint bodies, minimize conditions). An
/// edge `(head, body, kind)` records that deriving `head` depends on
/// `body`; choice elements count as heads of their enclosing rule's body
/// and of their own condition.
#[derive(Clone, Debug, Default)]
pub struct PredGraph {
    /// All predicates in the program.
    pub preds: BTreeSet<PredKey>,
    /// Dependency edges `(head, body, kind)`, deduplicated.
    pub edges: BTreeSet<(PredKey, PredKey, EdgeKind)>,
}

impl PredGraph {
    /// Build the dependency graph of `program`.
    pub fn build(program: &Program) -> PredGraph {
        let mut g = PredGraph::default();
        let note_body = |g: &mut PredGraph, head: Option<PredKey>, body: &[BodyElem]| {
            for e in body {
                let (atom, kind) = match e {
                    BodyElem::Pos(a) => (a, EdgeKind::Pos),
                    BodyElem::Neg(a) => (a, EdgeKind::Neg),
                    BodyElem::Cmp(..) => continue,
                };
                let b = pred_of(atom);
                g.preds.insert(b);
                if let Some(h) = head {
                    g.edges.insert((h, b, kind));
                }
            }
        };
        for rule in &program.rules {
            match &rule.head {
                Head::Atom(a) => {
                    let h = pred_of(a);
                    g.preds.insert(h);
                    note_body(&mut g, Some(h), &rule.body);
                }
                Head::Choice { elements, .. } => {
                    for el in elements {
                        let h = pred_of(&el.atom);
                        g.preds.insert(h);
                        note_body(&mut g, Some(h), &rule.body);
                        note_body(&mut g, Some(h), &el.condition);
                    }
                    if elements.is_empty() {
                        note_body(&mut g, None, &rule.body);
                    }
                }
                Head::None => note_body(&mut g, None, &rule.body),
            }
        }
        for me in &program.minimize {
            note_body(&mut g, None, &me.condition);
        }
        g
    }

    /// Predicates that appear in some body but head no rule, choice
    /// element, or fact — typos and stale references ground to nothing.
    pub fn undefined_preds(&self, program: &Program) -> BTreeSet<PredKey> {
        let defined = head_preds(program);
        self.preds
            .iter()
            .filter(|p| !defined.contains(*p))
            .copied()
            .collect()
    }
}

/// Predicates that head at least one rule, fact, or choice element.
pub fn head_preds(program: &Program) -> BTreeSet<PredKey> {
    let mut out = BTreeSet::new();
    for rule in &program.rules {
        match &rule.head {
            Head::Atom(a) => {
                out.insert(pred_of(a));
            }
            Head::Choice { elements, .. } => {
                for el in elements {
                    out.insert(pred_of(&el.atom));
                }
            }
            Head::None => {}
        }
    }
    out
}

fn pos_preds_hold(body: &[BodyElem], derivable: &BTreeSet<PredKey>) -> bool {
    body.iter().all(|e| match e {
        BodyElem::Pos(a) => derivable.contains(&pred_of(a)),
        _ => true,
    })
}

/// Predicates that can possibly have a true ground atom: the least
/// fixpoint of "all positive body predicates derivable ⟹ head predicate
/// derivable", ignoring negation and comparisons. This is the predicate
/// abstraction of the grounder's possible-atom closure, so any predicate
/// outside this set grounds to the empty relation.
pub fn derivable_preds(program: &Program) -> BTreeSet<PredKey> {
    let mut derivable: BTreeSet<PredKey> = BTreeSet::new();
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if !pos_preds_hold(&rule.body, &derivable) {
                continue;
            }
            match &rule.head {
                Head::Atom(a) => {
                    if derivable.insert(pred_of(a)) {
                        changed = true;
                    }
                }
                Head::Choice { elements, .. } => {
                    for el in elements {
                        if pos_preds_hold(&el.condition, &derivable)
                            && derivable.insert(pred_of(&el.atom))
                        {
                            changed = true;
                        }
                    }
                }
                Head::None => {}
            }
        }
        if !changed {
            break;
        }
    }
    derivable
}

fn seed_body(body: &[BodyElem], relevant: &mut BTreeSet<PredKey>) {
    for e in body {
        match e {
            BodyElem::Pos(a) | BodyElem::Neg(a) => {
                relevant.insert(pred_of(a));
            }
            BodyElem::Cmp(..) => {}
        }
    }
}

/// Predicates that can influence the outcome: backward closure from the
/// goal predicates (matched by name, any arity), every constraint body,
/// every choice rule (bodies, conditions, and elements — choices both
/// generate atoms and enforce cardinality bounds), and every `#minimize`
/// condition. Rules whose head predicate lies outside this set derive
/// atoms nothing ever reads.
pub fn relevant_preds(program: &Program, goal_preds: &[Sym]) -> BTreeSet<PredKey> {
    let goals: BTreeSet<Sym> = goal_preds.iter().copied().collect();
    let mut relevant: BTreeSet<PredKey> = BTreeSet::new();
    // Seeds.
    for rule in &program.rules {
        match &rule.head {
            Head::Atom(a) => {
                if goals.contains(&a.pred) {
                    relevant.insert(pred_of(a));
                }
            }
            Head::Choice { elements, .. } => {
                seed_body(&rule.body, &mut relevant);
                for el in elements {
                    relevant.insert(pred_of(&el.atom));
                    seed_body(&el.condition, &mut relevant);
                }
            }
            Head::None => seed_body(&rule.body, &mut relevant),
        }
        for e in &rule.body {
            if let BodyElem::Pos(a) | BodyElem::Neg(a) = e {
                if goals.contains(&a.pred) {
                    relevant.insert(pred_of(a));
                }
            }
        }
    }
    for me in &program.minimize {
        seed_body(&me.condition, &mut relevant);
    }
    // Backward closure over normal-rule definitions.
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let Head::Atom(a) = &rule.head else { continue };
            if !relevant.contains(&pred_of(a)) {
                continue;
            }
            let before = relevant.len();
            seed_body(&rule.body, &mut relevant);
            if relevant.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    relevant
}

/// Result of stratification analysis over a [`PredGraph`].
#[derive(Clone, Debug, Default)]
pub struct Stratification {
    /// Strongly connected components of the dependency graph (over both
    /// positive and negative edges), in reverse topological order.
    pub sccs: Vec<Vec<PredKey>>,
    /// Negative edges `(head, body)` with both endpoints in the same SCC:
    /// recursion through negation. Empty iff the program is stratified.
    pub unstratified: Vec<(PredKey, PredKey)>,
}

/// Compute SCCs of the dependency graph (Tarjan, iterative) and flag
/// negative edges internal to an SCC. A program with no such edge is
/// stratified: its stable model semantics never needs the solver's
/// unfounded-set (CEGAR) machinery.
pub fn stratify(graph: &PredGraph) -> Stratification {
    let nodes: Vec<PredKey> = graph.preds.iter().copied().collect();
    let index_of: BTreeMap<PredKey, usize> =
        nodes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (h, b, _) in &graph.edges {
        adj[index_of[h]].push(index_of[b]);
    }

    // Iterative Tarjan.
    const UNSEEN: usize = usize::MAX;
    let n = nodes.len();
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut scc_of = vec![UNSEEN; n];
    let mut sccs: Vec<Vec<PredKey>> = Vec::new();

    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        // (node, next child position)
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(ci) {
                call.last_mut().expect("frame present").1 += 1;
                if index[w] == UNSEEN {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        comp.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                let lv = low[v];
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(lv);
                }
            }
        }
    }

    let mut unstratified = Vec::new();
    for (h, b, kind) in &graph.edges {
        if *kind == EdgeKind::Neg && scc_of[index_of[h]] == scc_of[index_of[b]] {
            unstratified.push((*h, *b));
        }
    }
    Stratification { sccs, unstratified }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn keys(set: &BTreeSet<PredKey>) -> Vec<String> {
        set.iter().map(pred_name).collect()
    }

    #[test]
    fn derivable_ignores_negation_and_drops_undefined() {
        let p = parse_program(
            r#"
            a. b :- a, not c.
            d :- ghost.
            "#,
        )
        .unwrap();
        let d = derivable_preds(&p);
        assert_eq!(keys(&d), ["a/0", "b/0"]);
    }

    #[test]
    fn derivable_through_choice_elements() {
        let p = parse_program(
            r#"
            f(1).
            { q(X) : f(X) }.
            r(X) :- q(X).
            s(X) :- missing(X), q(X).
            "#,
        )
        .unwrap();
        let d = derivable_preds(&p);
        assert_eq!(keys(&d), ["f/1", "q/1", "r/1"]);
    }

    #[test]
    fn relevance_closes_backward_from_goals_and_constraints() {
        let p = parse_program(
            r#"
            base. mid :- base. goal :- mid.
            side :- base.
            checked :- base.
            :- checked.
            "#,
        )
        .unwrap();
        let r = relevant_preds(&p, &[Sym::intern("goal")]);
        // side/0 derives an atom nothing reads.
        assert_eq!(keys(&r), ["base/0", "checked/0", "goal/0", "mid/0"]);
    }

    #[test]
    fn stratified_program_has_no_internal_negative_edge() {
        let p = parse_program("a. b :- a, not c. c :- a.").unwrap();
        let s = stratify(&PredGraph::build(&p));
        assert!(s.unstratified.is_empty());
    }

    #[test]
    fn even_negation_loop_is_unstratified() {
        let p = parse_program("p :- not q. q :- not p.").unwrap();
        let s = stratify(&PredGraph::build(&p));
        assert_eq!(s.unstratified.len(), 2);
        let scc_sizes: Vec<usize> = s.sccs.iter().map(Vec::len).collect();
        assert!(scc_sizes.contains(&2));
    }

    #[test]
    fn undefined_preds_found() {
        let p = parse_program("a :- phantom. :- ghost, a.").unwrap();
        let g = PredGraph::build(&p);
        let und = g.undefined_preds(&p);
        assert_eq!(keys(&und), ["ghost/0", "phantom/0"]);
    }
}
