//! The engine's ground-truth test: on randomly generated propositional
//! programs, the solver's answer must agree with brute-force stable-model
//! enumeration — existence, stability of the returned model, constraint
//! satisfaction, and optimality of the cost vector.

use proptest::prelude::*;
use rustc_hash::FxHashSet;
use spackle_asp::ground::ground;
use spackle_asp::parse_program;
use spackle_asp::stability::{check_stability, Stability};
use spackle_asp::term::AtomId;
use spackle_asp::{SolveOutcome, Solver};

/// A tiny random propositional program over atoms a0..a{n-1}:
/// some facts, some choices, normal rules with negation, constraints,
/// and a minimize statement.
#[derive(Debug, Clone)]
struct RandomProgram {
    text: String,
}

fn atom(i: usize) -> String {
    format!("a{i}")
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    let n_atoms = 5usize;
    // Rules: (head, body_pos, body_neg) with small bodies.
    let lit = 0..n_atoms;
    let body = prop::collection::vec((lit.clone(), prop::bool::ANY), 0..3);
    let rule = (0..n_atoms, body);
    let rules = prop::collection::vec(rule, 0..6);
    let facts = prop::collection::vec(0..n_atoms, 0..2);
    let choices = prop::collection::vec(0..n_atoms, 0..3);
    let constraints = prop::collection::vec(
        prop::collection::vec((lit, prop::bool::ANY), 1..3),
        0..2,
    );
    let min_atoms = prop::collection::vec((0..n_atoms, 1..4i64), 0..3);

    (facts, choices, rules, constraints, min_atoms).prop_map(
        |(facts, choices, rules, constraints, min_atoms)| {
            let mut text = String::new();
            for f in facts {
                text.push_str(&format!("{}.\n", atom(f)));
            }
            for c in choices {
                text.push_str(&format!("{{ {} }}.\n", atom(c)));
            }
            for (head, body) in rules {
                if body.is_empty() {
                    continue; // already covered by facts
                }
                let parts: Vec<String> = body
                    .iter()
                    .map(|(a, pos)| {
                        if *pos {
                            atom(*a)
                        } else {
                            format!("not {}", atom(*a))
                        }
                    })
                    .collect();
                text.push_str(&format!("{} :- {}.\n", atom(head), parts.join(", ")));
            }
            for c in constraints {
                let parts: Vec<String> = c
                    .iter()
                    .map(|(a, pos)| {
                        if *pos {
                            atom(*a)
                        } else {
                            format!("not {}", atom(*a))
                        }
                    })
                    .collect();
                text.push_str(&format!(":- {}.\n", parts.join(", ")));
            }
            if !min_atoms.is_empty() {
                let parts: Vec<String> = min_atoms
                    .iter()
                    .map(|(a, w)| format!("{w}@1,\"t{a}\" : {}", atom(*a)))
                    .collect();
                text.push_str(&format!("#minimize {{ {} }}.\n", parts.join(" ; ")));
            }
            RandomProgram { text }
        },
    )
}

/// Brute force: enumerate all subsets of possible atoms; return the
/// stable models that satisfy every constraint, with their costs.
fn brute_force(text: &str) -> Vec<(FxHashSet<AtomId>, i64)> {
    let prog = parse_program(text).expect("generated program parses");
    let gp = ground(&prog).expect("generated program grounds");
    let possible: Vec<AtomId> = {
        let mut v: Vec<AtomId> = gp.possible.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let n = possible.len();
    assert!(n <= 20, "universe too large for brute force");
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        let model: FxHashSet<AtomId> = possible
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &a)| a)
            .collect();
        // Constraints: no (pos ⊆ M and neg ∩ M = ∅) instance may hold.
        let violated = gp.constraints.iter().any(|c| {
            c.pos.iter().all(|a| model.contains(a))
                && c.neg.iter().all(|a| !model.contains(a))
        });
        if violated {
            continue;
        }
        // Rules must be satisfied (model of the program).
        let rule_broken = gp.rules.iter().any(|r| {
            r.pos.iter().all(|a| model.contains(a))
                && r.neg.iter().all(|a| !model.contains(a))
                && !model.contains(&r.head)
        });
        if rule_broken {
            continue;
        }
        if !matches!(check_stability(&gp, &model), Stability::Stable) {
            continue;
        }
        // Cost: sum weights of distinct tuples whose condition holds.
        let mut cost = 0i64;
        let mut seen_tuples = FxHashSet::default();
        for m in &gp.minimize {
            let holds = m.pos.iter().all(|a| model.contains(a))
                && m.neg.iter().all(|a| !model.contains(a));
            if holds && seen_tuples.insert((m.priority, m.weight, m.tuple.clone())) {
                cost += m.weight;
            }
        }
        out.push((model, cost));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn solver_agrees_with_bruteforce(p in random_program()) {
        let brute = brute_force(&p.text);
        let prog = parse_program(&p.text).unwrap();
        let (outcome, _) = Solver::new().solve(&prog).unwrap();
        match outcome {
            SolveOutcome::Unsat => {
                prop_assert!(
                    brute.is_empty(),
                    "solver says UNSAT but brute force found {} stable models\nprogram:\n{}",
                    brute.len(),
                    p.text
                );
            }
            SolveOutcome::Optimal(model) => {
                prop_assert!(
                    !brute.is_empty(),
                    "solver found a model but brute force says none\nprogram:\n{}",
                    p.text
                );
                // The returned cost must equal the brute-force optimum.
                let best = brute.iter().map(|(_, c)| *c).min().unwrap();
                let got: i64 = model.cost.iter().map(|(_, c)| *c).sum();
                prop_assert_eq!(
                    got, best,
                    "suboptimal: got {} want {}\nprogram:\n{}",
                    got, best, p.text
                );
                // And the model itself must be one of the stable models.
                let rendered: std::collections::BTreeSet<String> =
                    model.render().into_iter().collect();
                let brute_sets: Vec<std::collections::BTreeSet<String>> = {
                    let prog2 = parse_program(&p.text).unwrap();
                    let gp = ground(&prog2).unwrap();
                    brute
                        .iter()
                        .map(|(m, _)| {
                            m.iter().map(|&a| gp.store.format_atom(a)).collect()
                        })
                        .collect()
                };
                prop_assert!(
                    brute_sets.contains(&rendered),
                    "returned model is not among brute-force stable models\nmodel: {:?}\nprogram:\n{}",
                    rendered,
                    p.text
                );
            }
        }
    }
}

/// A handful of tricky fixed programs, checked exactly.
#[test]
fn fixed_corner_cases() {
    // Even negation loop: two stable models; minimize picks the cheaper.
    let text = r#"
        a :- not b.
        b :- not a.
        #minimize { 3@1,"a" : a ; 1@1,"b" : b }.
    "#;
    let (outcome, _) = Solver::new().solve(&parse_program(text).unwrap()).unwrap();
    match outcome {
        SolveOutcome::Optimal(m) => {
            assert!(m.holds_str("b", &[]));
            assert!(!m.holds_str("a", &[]));
            assert_eq!(m.cost, vec![(1, 1)]);
        }
        SolveOutcome::Unsat => panic!("even loop has stable models"),
    }

    // Odd negation loop: no stable model.
    let text = "a :- not a.";
    let (outcome, _) = Solver::new().solve(&parse_program(text).unwrap()).unwrap();
    assert!(matches!(outcome, SolveOutcome::Unsat));

    // Odd loop defused by a fact.
    let text = "a :- not a. a.";
    let (outcome, _) = Solver::new().solve(&parse_program(text).unwrap()).unwrap();
    assert!(matches!(outcome, SolveOutcome::Optimal(_)));

    // Positive loop with choice-driven external support and a constraint
    // requiring the loop: the choice must fire.
    let text = r#"
        { ext }.
        x :- y.
        y :- x.
        x :- ext.
        :- not y.
    "#;
    let (outcome, _) = Solver::new().solve(&parse_program(text).unwrap()).unwrap();
    match outcome {
        SolveOutcome::Optimal(m) => {
            assert!(m.holds_str("ext", &[]));
            assert!(m.holds_str("x", &[]));
            assert!(m.holds_str("y", &[]));
        }
        SolveOutcome::Unsat => panic!("supported loop model exists"),
    }
}
