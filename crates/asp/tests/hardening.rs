//! Minimized deterministic regressions for solver/grounder corners that
//! the differential fuzz harness (`spackle-oracle`) leans on hardest.
//!
//! The harness ran >120k random program/repository cases against the
//! brute-force reference solver without finding a production bug; these
//! tests pin down the corner semantics it exercises — guarded and
//! over-tight choice bounds, weighted `#minimize` with shared factors,
//! set-of-tuples cost deduplication, unfounded-set handling under
//! choices — so any future regression fails here with a readable,
//! hand-checkable program instead of a fuzzer seed.

use spackle_asp::certify::certify_model;
use spackle_asp::{parse_program, Model, SolveOutcome, Solver};

fn models(text: &str, limit: usize) -> Vec<Vec<String>> {
    let prog = parse_program(text).unwrap();
    let ms = Solver::new().enumerate(&prog, limit).unwrap();
    let mut out: Vec<Vec<String>> = ms.iter().map(render).collect();
    out.sort();
    out
}

fn render(m: &Model) -> Vec<String> {
    let mut atoms = m.render();
    atoms.sort();
    atoms
}

fn optimum(text: &str) -> (Vec<String>, Vec<(i64, i64)>) {
    let prog = parse_program(text).unwrap();
    match Solver::new().solve(&prog).unwrap().0 {
        SolveOutcome::Optimal(m) => {
            certify_model(&m).expect("optimal model must certify");
            (render(&m), m.cost.clone())
        }
        SolveOutcome::Unsat => panic!("expected optimum, got UNSAT"),
    }
}

fn strs(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

#[test]
fn guarded_bounds_are_vacuous_when_body_fails() {
    // The cardinality bounds of `2 { a ; b } 2 :- g.` apply only in
    // models where g holds; without g, a and b are simply unfounded.
    let ms = models("{ g }. 2 { a ; b } 2 :- g.", 8);
    assert_eq!(ms, vec![strs(&[]), strs(&["a", "b", "g"])]);
}

#[test]
fn lower_bound_above_element_count_is_unsatisfiable_when_active() {
    // 3 { a ; b } can never be met: the choice instance is active
    // (empty body) so every candidate model is rejected.
    assert_eq!(models("3 { a ; b }.", 8), Vec::<Vec<String>>::new());
    // But guarded by g, the "false" branch survives.
    assert_eq!(models("{ g }. 3 { a ; b } :- g.", 8), vec![strs(&[])]);
}

#[test]
fn duplicate_choice_elements_do_not_double_count() {
    // `a` appearing twice in the element list is still one atom; the
    // exactly-2 bound can therefore only be met by {a, b}.
    let ms = models("2 { a ; a ; b } 2.", 8);
    assert_eq!(ms, vec![strs(&["a", "b"])]);
}

#[test]
fn choice_supported_positive_loop_needs_external_support() {
    // a and b support each other; only the choice on c breaks the loop.
    let ms = models("{ c }. a :- c. a :- b. b :- a.", 8);
    assert_eq!(ms, vec![strs(&[]), strs(&["a", "b", "c"])]);
}

#[test]
fn interleaved_negation_loops_enumerate_all_branches() {
    // Two independent even loops -> 4 models; the constraint kills the
    // branch picking both left atoms.
    let ms = models(
        "p :- not q. q :- not p. r :- not s. s :- not r. :- p, r.",
        16,
    );
    assert_eq!(
        ms,
        vec![
            strs(&["p", "s"]),
            strs(&["q", "r"]),
            strs(&["q", "s"]),
        ]
    );
}

#[test]
fn composite_weights_share_a_factor() {
    // All weights divisible by 3 — exercises the optimizer's weighted
    // counter normalization. Cheapest nonempty pick is c alone (3);
    // the constraint forbids the empty selection.
    let (model, cost) = optimum(
        r#"
        1 { a ; b ; c }.
        #minimize { 6@1,"a" : a ; 9@1,"b" : b ; 3@1,"c" : c }.
        "#,
    );
    assert_eq!(model, strs(&["c"]));
    assert_eq!(cost, vec![(1, 3)]);
}

#[test]
fn minimize_tuple_charged_once_across_conditions() {
    // Same (weight, priority, tuple) from two different atoms: clingo
    // semantics charge it once if *any* condition holds.
    let (_, cost) = optimum(
        r#"
        a. b.
        #minimize { 7@1,"same" : a ; 7@1,"same" : b }.
        "#,
    );
    assert_eq!(cost, vec![(1, 7)]);
}

#[test]
fn distinct_tuples_accumulate_within_a_priority() {
    let (_, cost) = optimum(
        r#"
        a. b.
        #minimize { 7@1,"x" : a ; 7@1,"y" : b }.
        "#,
    );
    assert_eq!(cost, vec![(1, 14)]);
}

#[test]
fn priorities_optimize_lexicographically_descending() {
    // Priority 2 dominates: pick b despite its worse priority-1 cost.
    let (model, cost) = optimum(
        r#"
        1 { a ; b } 1.
        #minimize { 5@2 : a ; 1@2 : b }.
        #minimize { 0@1 : a ; 100@1 : b }.
        "#,
    );
    assert_eq!(model, strs(&["b"]));
    assert_eq!(cost, vec![(2, 1), (1, 100)]);
}

#[test]
fn zero_weight_elements_do_not_move_the_optimum() {
    let (_, cost) = optimum(
        r#"
        1 { a ; b } 1.
        #minimize { 0@1,"a" : a ; 0@1,"b" : b }.
        "#,
    );
    assert_eq!(cost, vec![(1, 0)]);
}

#[test]
fn negated_minimize_condition_charges_absent_atom() {
    // Charging `not a` makes choosing a the cheaper model.
    let (model, cost) = optimum("{ a }. #minimize { 4@1 : not a }.");
    assert_eq!(model, strs(&["a"]));
    assert_eq!(cost, vec![(1, 0)]);
}

#[test]
fn comparison_guards_prune_grounding() {
    // The selection-flavor shape from the fuzzer: forbid the largest
    // candidate via an arithmetic comparison, prefer small indices.
    let (model, cost) = optimum(
        r#"
        cand(0). cand(1). cand(2).
        1 { sel(X) : cand(X) } 1.
        :- sel(X), X >= 2.
        #minimize { X@1,X : sel(X) }.
        "#,
    );
    assert_eq!(model, strs(&["cand(0)", "cand(1)", "cand(2)", "sel(0)"]));
    assert_eq!(cost, vec![(1, 0)]);
}

#[test]
fn enumeration_respects_the_limit_without_dropping_optima() {
    let prog = parse_program("{ a }. { b }. { c }.").unwrap();
    let solver = Solver::new();
    assert_eq!(solver.enumerate(&prog, 8).unwrap().len(), 8);
    assert_eq!(solver.enumerate(&prog, 3).unwrap().len(), 3);
}

#[test]
fn every_enumerated_model_certifies() {
    let prog = parse_program(
        r#"
        d(0). d(1).
        q(X) :- d(X), not r(X).
        r(X) :- d(X), not q(X).
        p :- q(0).
        "#,
    )
    .unwrap();
    let ms = Solver::new().enumerate(&prog, 16).unwrap();
    assert_eq!(ms.len(), 4, "two independent even loops");
    for m in &ms {
        spackle_asp::certify::certify_atoms(m.ground(), m.atom_set())
            .expect("every enumerated model must pass the certificate check");
    }
}
