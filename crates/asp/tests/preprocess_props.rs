//! Metamorphic tests for the SatELite-style preprocessing pass.
//!
//! The properties (each over seeded random CNF instances, so failures
//! replay deterministically):
//!
//! 1. **Equisatisfiability** — preprocess-then-solve must agree with
//!    direct solving on every formula, for every preprocessing
//!    configuration in the grid.
//! 2. **Model reconstruction** — whenever the simplified instance is
//!    satisfiable, replaying the reconstruction trace must yield a full
//!    assignment that satisfies *every original clause*, including the
//!    ones subsumed, strengthened, or distributed away.
//! 3. **Idempotence** — running the pipeline on its own output finds
//!    nothing further to do (the pipeline already iterates to fixpoint).
//! 4. **Solver-integrated equivalence** — a [`Sat`] that preprocessed
//!    (with some vars frozen) answers identically to a pristine solver
//!    under random assumption sets over the frozen vars.
//!
//! Plus minimized regressions for the corner cases that bit during
//! development: conflicts discovered by unit propagation, unit-only
//! formulas, tautology-only formulas, and variables eliminated by the
//! preprocessor and then re-mentioned by later assumptions or clauses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spackle_asp::cdcl::{Lit, Sat, SatResult, Var};
use spackle_asp::preprocess::{preprocess, PreprocessConfig};

/// Random CNF skewed toward the shapes the passes act on: short
/// clauses, repeated variables, occasional duplicate literals and
/// tautologies, a sprinkle of units.
fn random_cnf(rng: &mut StdRng) -> (usize, Vec<Vec<Lit>>) {
    let num_vars = rng.gen_range(3..17);
    let num_clauses = rng.gen_range(1..49);
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = match rng.gen_range(0..10) {
                0 => 1,
                1..=4 => 2,
                5..=7 => 3,
                _ => rng.gen_range(4..7),
            };
            (0..len)
                .map(|_| {
                    let v = rng.gen_range(0..num_vars) as Var;
                    Lit::with_value(v, rng.gen_bool(0.5))
                })
                .collect()
        })
        .collect();
    (num_vars, clauses)
}

fn solve_directly(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
    let mut s = Sat::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        if !s.add_clause(c) {
            return None;
        }
    }
    match s.solve() {
        SatResult::Sat => Some((0..num_vars as Var).map(|v| s.value(v)).collect()),
        SatResult::Unsat => None,
        SatResult::Unknown => unreachable!("no conflict budget set"),
        SatResult::Cancelled { .. } => unreachable!("no cancel token set"),
    }
}

fn satisfies(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|l| model[l.var() as usize] != l.is_neg()))
}

/// Every preprocessing configuration worth distinguishing: all-on,
/// each pass alone, each pass ablated.
fn configs() -> Vec<PreprocessConfig> {
    let all = PreprocessConfig::default();
    let up_only = PreprocessConfig {
        pure_literals: false,
        failed_literals: false,
        subsumption: false,
        self_subsumption: false,
        var_elim: false,
        ..all.clone()
    };
    let passes: &[fn(&mut PreprocessConfig, bool)] = &[
        |c, on| c.pure_literals = on,
        |c, on| c.failed_literals = on,
        |c, on| c.subsumption = on,
        |c, on| c.self_subsumption = on,
        |c, on| c.var_elim = on,
    ];
    let mut grid = vec![all.clone(), PreprocessConfig::disabled(), up_only.clone()];
    for set in passes {
        let mut ablated = all.clone();
        set(&mut ablated, false);
        grid.push(ablated);
        let mut alone = up_only.clone();
        set(&mut alone, true);
        grid.push(alone);
    }
    grid
}

#[test]
fn preprocess_then_solve_is_equisatisfiable_and_models_reconstruct() {
    let grid = configs();
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (num_vars, clauses) = random_cnf(&mut rng);
        let direct = solve_directly(num_vars, &clauses);
        // Freeze nothing: the preprocessor owns every variable.
        let frozen = vec![false; num_vars];
        for (ci, config) in grid.iter().enumerate() {
            let pre = preprocess(num_vars, &clauses, &frozen, config);
            if pre.unsat {
                assert!(
                    direct.is_none(),
                    "[seed {seed}, config {ci}] preprocessor claims UNSAT on a \
                     satisfiable formula\nclauses: {clauses:?}"
                );
                continue;
            }
            let simplified = solve_directly(pre.num_vars, &pre.clauses);
            assert_eq!(
                simplified.is_some(),
                direct.is_some(),
                "[seed {seed}, config {ci}] satisfiability changed by preprocessing\n\
                 clauses: {clauses:?}\nsimplified: {:?}",
                pre.clauses
            );
            if let Some(mut model) = simplified {
                pre.reconstruct(&mut model);
                assert!(
                    satisfies(&clauses, &model),
                    "[seed {seed}, config {ci}] reconstructed model violates an \
                     original clause\nclauses: {clauses:?}\nmodel: {model:?}\n\
                     trace: {:?}",
                    pre.trace()
                );
            }
        }
    }
}

#[test]
fn preprocessing_is_idempotent() {
    let config = PreprocessConfig::default();
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (num_vars, clauses) = random_cnf(&mut rng);
        let frozen = vec![false; num_vars];
        let first = preprocess(num_vars, &clauses, &frozen, &config);
        if first.unsat {
            continue;
        }
        let second = preprocess(first.num_vars, &first.clauses, &frozen, &config);
        assert!(
            !second.unsat && second.stats.is_noop(),
            "[seed {seed}] second pass found more work: {:?}\n\
             first output: {:?}",
            second.stats,
            first.clauses
        );
        assert_eq!(
            second.clauses, first.clauses,
            "[seed {seed}] second pass rewrote clauses"
        );
    }
}

/// The solver-integrated path: preprocess with a random *frozen* subset,
/// then answer random assumption queries over frozen vars. Must match a
/// solver that never preprocessed — including queries that mention
/// variables the preprocessor eliminated (exercising reintroduction).
#[test]
fn preprocessed_solver_answers_assumption_queries_identically() {
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let (num_vars, clauses) = random_cnf(&mut rng);
        let frozen: Vec<bool> = (0..num_vars).map(|_| rng.gen_bool(0.5)).collect();

        let mut plain = Sat::new();
        let mut prepped = Sat::new();
        for _ in 0..num_vars {
            plain.new_var();
            prepped.new_var();
        }
        let mut ok = true;
        for c in &clauses {
            ok &= plain.add_clause(c);
            prepped.add_clause(c);
        }
        prepped.preprocess(&PreprocessConfig::default(), &frozen);

        for q in 0..12 {
            // Mix frozen and non-frozen (possibly eliminated) vars.
            let n_assumps = rng.gen_range(0..4);
            let assumps: Vec<Lit> = (0..n_assumps)
                .map(|_| {
                    let v = rng.gen_range(0..num_vars) as Var;
                    Lit::with_value(v, rng.gen_bool(0.5))
                })
                .collect();
            let want = if ok {
                plain.solve_with(&assumps)
            } else {
                SatResult::Unsat
            };
            let got = prepped.solve_with(&assumps);
            assert_eq!(
                want, got,
                "[seed {seed}, query {q}] assumption query diverged under \
                 preprocessing\nassumps: {assumps:?}\nfrozen: {frozen:?}\n\
                 clauses: {clauses:?}"
            );
            if got == SatResult::Sat {
                let model: Vec<bool> = (0..num_vars as Var).map(|v| prepped.value(v)).collect();
                assert!(
                    satisfies(&clauses, &model),
                    "[seed {seed}, query {q}] preprocessed solver returned a \
                     non-model\nmodel: {model:?}\nclauses: {clauses:?}"
                );
                for a in &assumps {
                    assert_eq!(
                        model[a.var() as usize],
                        !a.is_neg(),
                        "[seed {seed}, query {q}] assumption {a:?} not honored"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Minimized corner-case regressions.
// ---------------------------------------------------------------------

fn lit(v: Var, positive: bool) -> Lit {
    Lit::with_value(v, positive)
}

/// Unit propagation inside the preprocessor derives the empty clause.
#[test]
fn regression_empty_clause_from_unit_propagation() {
    let clauses = vec![
        vec![lit(0, true)],
        vec![lit(0, false), lit(1, true)],
        vec![lit(1, false)],
    ];
    let pre = preprocess(2, &clauses, &[false, false], &PreprocessConfig::default());
    assert!(pre.unsat, "UP chain 0 -> 1 -> conflict must be detected");
}

/// A formula that is nothing but (consistent) units: everything is
/// fixed, the simplified instance is empty, and reconstruction restores
/// the forced values.
#[test]
fn regression_unit_only_formula() {
    let clauses = vec![vec![lit(0, true)], vec![lit(1, false)], vec![lit(2, true)]];
    let pre = preprocess(3, &clauses, &[false; 3], &PreprocessConfig::default());
    assert!(!pre.unsat);
    assert!(pre.clauses.is_empty(), "units must fully simplify away");
    let mut model = vec![false; 3];
    pre.reconstruct(&mut model);
    assert!(satisfies(&clauses, &model));
    assert!(model[0] && !model[1] && model[2]);
}

/// Contradictory units are UNSAT even with every pass but UP disabled.
#[test]
fn regression_contradictory_units() {
    let clauses = vec![vec![lit(0, true)], vec![lit(0, false)]];
    let config = PreprocessConfig {
        pure_literals: false,
        failed_literals: false,
        subsumption: false,
        self_subsumption: false,
        var_elim: false,
        ..PreprocessConfig::default()
    };
    let pre = preprocess(1, &clauses, &[false], &config);
    assert!(pre.unsat);
}

/// Tautologies are dropped on intake; a tautology-only formula
/// simplifies to nothing and any reconstructed assignment satisfies it.
#[test]
fn regression_tautology_only_formula() {
    let clauses = vec![
        vec![lit(0, true), lit(0, false)],
        vec![lit(1, true), lit(2, true), lit(1, false)],
    ];
    let pre = preprocess(3, &clauses, &[false; 3], &PreprocessConfig::default());
    assert!(!pre.unsat);
    assert!(pre.clauses.is_empty());
    let mut model = vec![false; 3];
    pre.reconstruct(&mut model);
    assert!(satisfies(&clauses, &model));
}

/// A variable eliminated by BVE and then re-mentioned in assumptions:
/// the integrated solver must reintroduce it and still answer soundly
/// in *both* polarities — including the polarity that contradicts the
/// value reconstruction would have picked.
#[test]
fn regression_eliminated_var_remention_in_assumptions() {
    // v2 is eliminable: (v0 | v2) & (v1 | !v2). Freezing v0, v1 only.
    let clauses = vec![vec![lit(0, true), lit(2, true)], vec![lit(1, true), lit(2, false)]];
    let mut s = Sat::new();
    for _ in 0..3 {
        s.new_var();
    }
    for c in &clauses {
        s.add_clause(c);
    }
    let stats = s.preprocess(&PreprocessConfig::default(), &[true, true, false]);
    assert!(
        stats.eliminated_vars >= 1,
        "v2 should be eliminated (stats: {stats:?})"
    );
    // Assume v2 true: forces v1 (via v1 | !v2).
    assert_eq!(s.solve_with(&[lit(2, true)]), SatResult::Sat);
    assert!(s.value(1), "v2=true must force v1=true after reintroduction");
    // Assume v2 false: forces v0.
    assert_eq!(s.solve_with(&[lit(2, false)]), SatResult::Sat);
    assert!(s.value(0), "v2=false must force v0=true after reintroduction");
    // Both polarities at once: contradiction through the reintroduced var.
    assert_eq!(s.solve_with(&[lit(2, true), lit(2, false)]), SatResult::Unsat);
    // And the solver still works unassumed afterwards.
    assert_eq!(s.solve(), SatResult::Sat);
}

/// A variable eliminated by BVE and then re-mentioned by a *new clause*
/// added after preprocessing: reintroduction plus the new constraint
/// must both hold.
#[test]
fn regression_eliminated_var_remention_in_new_clause() {
    let clauses = vec![vec![lit(0, true), lit(2, true)], vec![lit(1, true), lit(2, false)]];
    let mut s = Sat::new();
    for _ in 0..3 {
        s.new_var();
    }
    for c in &clauses {
        s.add_clause(c);
    }
    let stats = s.preprocess(&PreprocessConfig::default(), &[true, true, false]);
    assert!(stats.eliminated_vars >= 1);
    // Force v2 true and v1 false via new clauses: UNSAT (v2 needs v1).
    assert!(s.add_clause(&[lit(2, true)]));
    let ok = s.add_clause(&[lit(1, false)]);
    assert!(!ok || s.solve() == SatResult::Unsat);
}
