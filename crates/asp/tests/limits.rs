//! Resource-limit and robustness tests for the ASP engine.

use spackle_asp::ground::{ground_with_limits, GroundLimits};
use spackle_asp::{parse_program, AspError, Solver, SolverConfig};

#[test]
fn atom_limit_aborts_grounding() {
    // Cross product n(X), n(Y) over 100 constants -> 10k pairs, over a
    // 1k limit.
    let mut text = String::new();
    for i in 0..100 {
        text.push_str(&format!("n({i}).\n"));
    }
    text.push_str("pair(X,Y) :- n(X), n(Y).\n");
    let prog = parse_program(&text).unwrap();
    let limits = GroundLimits {
        max_atoms: 1000,
        max_rules: usize::MAX,
    };
    assert!(matches!(
        ground_with_limits(&prog, limits),
        Err(AspError::ResourceLimit(_))
    ));
}

#[test]
fn rule_limit_aborts_emission() {
    let mut text = String::new();
    for i in 0..60 {
        text.push_str(&format!("n({i}).\n"));
    }
    text.push_str("pair(X,Y) :- n(X), n(Y).\n");
    let prog = parse_program(&text).unwrap();
    let limits = GroundLimits {
        max_atoms: usize::MAX,
        max_rules: 500,
    };
    assert!(matches!(
        ground_with_limits(&prog, limits),
        Err(AspError::ResourceLimit(_))
    ));
}

#[test]
fn conflict_budget_surfaces_as_resource_limit() {
    // A hard pigeonhole instance expressed in ASP: 8 pigeons, 7 holes,
    // with a 1-conflict budget the solver cannot finish.
    let mut text = String::new();
    for p in 0..8 {
        text.push_str(&format!("pigeon({p}).\n"));
    }
    for h in 0..7 {
        text.push_str(&format!("hole({h}).\n"));
    }
    text.push_str("1 { at(P,H) : hole(H) } 1 :- pigeon(P).\n");
    text.push_str(":- at(P1,H), at(P2,H), P1 != P2.\n");
    let prog = parse_program(&text).unwrap();
    let solver = Solver::with_config(SolverConfig {
        conflict_budget: 1,
        ..Default::default()
    });
    match solver.solve(&prog) {
        Err(AspError::BudgetExhausted { conflicts, .. }) => {
            assert!(conflicts >= 1, "effort counters must be populated");
        }
        Err(other) => panic!("unexpected error {other}"),
        Ok(_) => panic!("1 conflict cannot decide PHP(8,7)"),
    }
    // With an adequate budget the same program is proved UNSAT.
    let solver = Solver::with_config(SolverConfig {
        conflict_budget: 2_000_000,
        ..Default::default()
    });
    let (outcome, stats) = solver.solve(&prog).unwrap();
    assert!(matches!(outcome, spackle_asp::SolveOutcome::Unsat));
    assert!(stats.conflicts > 0);
}

#[test]
fn large_fact_base_grounds_quickly() {
    // 5k facts with an indexed join: should ground in well under a
    // second even in debug builds.
    let mut text = String::new();
    for i in 0..5_000 {
        text.push_str(&format!("edge({i},{}).\n", i + 1));
    }
    text.push_str("succ(X,Y) :- edge(X,Y).\n");
    text.push_str("start(0).\n");
    text.push_str("two(Z) :- start(X), succ(X,Y), succ(Y,Z).\n");
    let prog = parse_program(&text).unwrap();
    let t = std::time::Instant::now();
    let gp = ground_with_limits(&prog, GroundLimits::default()).unwrap();
    assert!(gp.certain.len() > 5_000);
    assert!(
        t.elapsed() < std::time::Duration::from_secs(10),
        "grounding took {:?}",
        t.elapsed()
    );
}

#[test]
fn deep_recursion_does_not_overflow_stack() {
    // A 1500-step derivation chain: iterative algorithms must cope.
    let mut text = String::from("s(0).\n");
    for i in 0..1500 {
        text.push_str(&format!("step({i},{}).\n", i + 1));
    }
    text.push_str("s(Y) :- s(X), step(X,Y).\n");
    let prog = parse_program(&text).unwrap();
    let (outcome, _) = Solver::new().solve(&prog).unwrap();
    match outcome {
        spackle_asp::SolveOutcome::Optimal(m) => {
            assert!(m.len() > 3_000);
        }
        spackle_asp::SolveOutcome::Unsat => panic!("chain is satisfiable"),
    }
}
