//! The `spackle` command-line tool: a small driver over the library,
//! using the built-in RADIUSS demo repository (with the `mpiabi` mock)
//! as its package universe and a JSON file as its buildcache.
//!
//! ```console
//! $ spackle parse "hdf5@1.14 +mpi ^zlib@1.3"
//! $ spackle providers mpi
//! $ spackle concretize "hypre" --save-cache cache.json
//! $ spackle concretize "hypre ^mpiabi" --cache cache.json
//! $ spackle concretize "hypre ^mpiabi" --cache cache.json --old
//! $ spackle install "hypre" --cache cache.json --root ./store
//! $ spackle splices
//! $ spackle list --cache cache.json
//! ```

use spackle::core::Goal;
use spackle::environment::Environment;
use spackle::prelude::*;
use spackle::radiuss::{farm_artifact, radiuss_repo, with_mpiabi};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: spackle <command> [args]

commands:
  parse <spec>                     parse a spec and show its structure
  concretize <spec> [options]      resolve a spec against the demo repo
      --cache FILE                 load reusable specs from a JSON cache
      --save-cache FILE            add the solution to FILE (created if absent)
      --old                        emulate old spack (direct encoding, no splicing)
      --no-splice                  new encoding, splicing disabled
      --forbid PKG                 exclude PKG from the solution (repeatable)
      --explain                    on UNSAT, extract a minimal core and map every
                                   member to the source directive that produced it
      --json                       with --explain: machine-readable explanation
      --timeout-ms N               cancel the solve (and --explain minimization)
                                   after N milliseconds
  install <spec> [options]         concretize then install
      --cache FILE                 reuse binaries from FILE
      --root DIR                   install layout root (default ./spackle-store)
      --write                      write artifacts to the real filesystem
  list --cache FILE                list cache entries
  providers <virtual>              show providers of a virtual package
  splices                          list all can_splice declarations
  abi-audit --cache FILE           discover ABI-compatible replacement pairs
  audit [options]                  statically check the demo repo and solver program
      --json                       machine-readable report
      --deny CODE                  promote CODE (e.g. SPKL-R002) to an error (repeatable)
      --goal SPEC                  also prove SPEC concretizable (L006; repeatable;
                                   default: every package in the repo)
  env <create|add|concretize|install|status> FILE [args]
                                   manage an environment (spack.yaml/lock analogue)
      env create FILE
      env add FILE SPEC
      env concretize FILE [--cache CACHE] [--old|--no-splice]
      env install FILE [--cache CACHE] [--root DIR]
      env status FILE
  repo                             summarize the demo repository"
    );
    ExitCode::from(2)
}

fn load_cache(path: Option<&str>) -> BuildCache {
    match path {
        None => BuildCache::new(),
        Some(p) => match std::fs::read_to_string(p) {
            Ok(s) => BuildCache::from_json(&s).unwrap_or_else(|e| {
                eprintln!("spackle: cache {p} is corrupt: {e}");
                std::process::exit(1);
            }),
            Err(_) => BuildCache::new(),
        },
    }
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn flag_values<'a>(args: &'a [String], key: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == key {
            if let Some(v) = args.get(i + 1) {
                out.push(v.as_str());
            }
        }
    }
    out
}

fn print_solution(sol: &Solution) {
    for spec in &sol.specs {
        println!("{}", render_tree(spec));
    }
    println!(
        "reused {} | build {} | spliced {}",
        sol.reused.len(),
        sol.built.len(),
        sol.spliced.len()
    );
    for s in &sol.spliced {
        println!("  splice: {}'s dependency {} -> {}", s.parent, s.replaced, s.replacement);
    }
    println!(
        "timing: encode {:?}, solve {:?}, total {:?} ({} reusable specs considered)",
        sol.stats.encode_time, sol.stats.solve_time, sol.stats.total_time, sol.stats.reusable_specs
    );
}

fn render_tree(spec: &ConcreteSpec) -> String {
    spec.format_tree()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let repo = with_mpiabi(&radiuss_repo());

    match cmd.as_str() {
        "parse" => {
            let Some(text) = args.get(1) else { return usage() };
            match parse_spec(text) {
                Ok(s) => {
                    println!("name:     {}", s.name.map(|n| n.as_str()).unwrap_or("(anonymous)"));
                    println!("version:  {}", s.version);
                    for (vn, vv) in &s.variants {
                        println!("variant:  {vn} = {vv}");
                    }
                    if let Some(os) = s.os {
                        println!("os:       {os}");
                    }
                    if let Some(t) = s.target {
                        println!("target:   {t}");
                    }
                    for d in &s.deps {
                        println!(
                            "dep:      {} ({:?})",
                            d.spec,
                            d.types
                        );
                    }
                    println!("canonical: {s}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("spackle: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "concretize" => {
            let Some(text) = args.get(1) else { return usage() };
            let spec = match parse_spec(text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("spackle: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cache = load_cache(flag_value(&args, "--cache").or(flag_value(&args, "--save-cache")));
            let mut cfg = if args.iter().any(|a| a == "--old") {
                ConcretizerConfig::old_spack()
            } else if args.iter().any(|a| a == "--no-splice") {
                ConcretizerConfig::splice_spack_disabled()
            } else {
                ConcretizerConfig::splice_spack()
            };
            if let Some(ms) = flag_value(&args, "--timeout-ms") {
                match ms.parse::<u64>() {
                    Ok(n) => {
                        cfg.solver.cancel = spackle::asp::CancelToken::with_deadline(
                            std::time::Duration::from_millis(n),
                        );
                    }
                    Err(_) => {
                        eprintln!("spackle: --timeout-ms wants a number, got {ms}");
                        return ExitCode::from(2);
                    }
                }
            }
            let mut goal = Goal::single(spec);
            for f in flag_values(&args, "--forbid") {
                goal.forbidden.push(Sym::intern(f));
            }
            let concretizer = Concretizer::new(&repo)
                .with_config(cfg)
                .with_reusable(cache.clone());
            if args.iter().any(|a| a == "--explain") {
                let json = args.iter().any(|a| a == "--json");
                match concretizer.explain_goal(&goal) {
                    Ok(None) => {
                        if json {
                            println!("{{\"satisfiable\":true}}");
                            return ExitCode::SUCCESS;
                        }
                        println!("goal is satisfiable; concretizing:");
                        // fall through to the normal solve below
                    }
                    Ok(Some(ex)) => {
                        let report = spackle::audit::explanation_report(&repo, text, &ex);
                        if json {
                            println!(
                                "{{\"satisfiable\":false,\"minimal\":{},\"core_size\":{},\
                                 \"core_initial\":{},\"probes\":{},\"explain_ms\":{},\
                                 \"report\":{}}}",
                                ex.minimal,
                                ex.entries.len(),
                                ex.core_initial,
                                ex.probes,
                                ex.time.as_millis(),
                                report.render_json()
                            );
                        } else {
                            print!("{}", report.render_human());
                            println!(
                                "explain: core {} -> {} member(s), {} deletion probe(s), {:?}",
                                ex.core_initial,
                                ex.entries.len(),
                                ex.probes,
                                ex.time
                            );
                        }
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("spackle: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let sol = match concretizer.concretize_goal(&goal) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("spackle: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print_solution(&sol);
            if let Some(path) = flag_value(&args, "--save-cache") {
                let mut cache = cache;
                for s in &sol.specs {
                    cache.add_spec_with(s, farm_artifact);
                }
                if let Err(e) = std::fs::write(path, cache.to_json()) {
                    eprintln!("spackle: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("cache: {} specs -> {path}", cache.len());
            }
            ExitCode::SUCCESS
        }
        "audit" => {
            let json = args.iter().any(|a| a == "--json");
            let mut deny = Vec::new();
            for c in flag_values(&args, "--deny") {
                match spackle::audit::Code::parse(c) {
                    Some(code) => deny.push(code),
                    None => {
                        eprintln!("spackle: unknown diagnostic code: {c}");
                        return ExitCode::from(2);
                    }
                }
            }
            // Level 1 audits the demo repository; level 2 audits the
            // exact ASP program the concretizer would hand the solver
            // for a representative goal (empty cache, default config).
            let goal = Goal::single(parse_spec("hypre").expect("valid demo goal"));
            let enc = match Concretizer::new(&repo).program_text(&goal) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("spackle: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match spackle::asp::parse_program(&enc.program) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("spackle: generated program invalid: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // The interpreter reads exactly these predicates from models.
            let goals = [Sym::intern("attr"), Sym::intern("splice_to")];
            let mut report = spackle::audit::audit(&repo, &program, &goals);
            // L006: prove goals statically concretizable. Explicit
            // --goal flags win; the default sweeps every package.
            let explicit: Vec<&str> = flag_values(&args, "--goal");
            let mut l006_goals = Vec::new();
            if explicit.is_empty() {
                for pkg in repo.packages() {
                    l006_goals.push(Goal::single(AbstractSpec::named(pkg.name.as_str())));
                }
            } else {
                for g in explicit {
                    match parse_spec(g) {
                        Ok(s) => l006_goals.push(Goal::single(s)),
                        Err(e) => {
                            eprintln!("spackle: --goal {g}: {e}");
                            return ExitCode::from(2);
                        }
                    }
                }
            }
            report.extend(spackle::audit::audit_concretizability(&repo, &l006_goals));
            report.deny(&deny);
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "install" => {
            let Some(text) = args.get(1) else { return usage() };
            let spec = match parse_spec(text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("spackle: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cache = load_cache(flag_value(&args, "--cache"));
            let root = flag_value(&args, "--root").unwrap_or("./spackle-store");
            let sol = match Concretizer::new(&repo)
                .with_config(ConcretizerConfig::splice_spack())
                .with_reusable(cache.clone())
                .concretize(&spec)
            {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("spackle: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut installer = Installer::new(InstallLayout::new(root));
            let plan = InstallPlan::plan(sol.spec(), &cache);
            match installer.install(sol.spec(), &cache, &plan) {
                Ok(report) => {
                    println!("{}", render_tree(sol.spec()));
                    println!(
                        "installed: built={} reused={} rewired={} (relocations: {} in place, {} lengthened)",
                        report.built,
                        report.reused,
                        report.rewired,
                        report.relocation.in_place,
                        report.relocation.lengthened
                    );
                    let problems = installer.verify(sol.spec());
                    if problems.is_empty() {
                        println!("verify: ok");
                    } else {
                        for p in problems {
                            eprintln!("verify: {p}");
                        }
                        return ExitCode::FAILURE;
                    }
                    if args.iter().any(|a| a == "--write") {
                        for (prefix, bytes) in installer.installed_prefixes() {
                            let path = std::path::Path::new(prefix);
                            if let Some(dir) = path.parent() {
                                let _ = std::fs::create_dir_all(dir);
                            }
                            let _ = std::fs::create_dir_all(path);
                            if let Err(e) = std::fs::write(path.join("binary.spkl"), bytes) {
                                eprintln!("spackle: writing {prefix}: {e}");
                                return ExitCode::FAILURE;
                            }
                        }
                        println!("wrote {} prefixes under {root}", installer.installed_count());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("spackle: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "list" => {
            let cache = load_cache(flag_value(&args, "--cache"));
            for e in cache.entries() {
                println!("/{}  {}", e.spec.dag_hash().short(), e.spec.format_flat());
            }
            println!("{} specs", cache.len());
            ExitCode::SUCCESS
        }
        "providers" => {
            let Some(v) = args.get(1) else { return usage() };
            let provs = repo.providers_of(Sym::intern(v));
            if provs.is_empty() {
                println!("no providers of {v}");
            } else {
                for p in provs {
                    println!("{p}");
                }
            }
            ExitCode::SUCCESS
        }
        "splices" => {
            for pkg in repo.packages() {
                for cs in &pkg.can_splice {
                    println!(
                        "{} (when {}) can replace {}",
                        pkg.name,
                        if cs.when.is_empty() {
                            "always".to_string()
                        } else {
                            cs.when.to_string()
                        },
                        cs.target
                    );
                }
            }
            ExitCode::SUCCESS
        }
        "abi-audit" => {
            // Scan a cache for ABI-compatible replacement opportunities
            // (the paper's future-work direction, implemented over the
            // synthetic artifacts' symbol tables).
            let cache = load_cache(flag_value(&args, "--cache"));
            let suggestions = match spackle::buildcache::suggest_splices(&cache) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cache unreadable: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if suggestions.is_empty() {
                println!("no cross-package ABI-compatible pairs found");
            } else {
                for s in suggestions {
                    println!("{}", s.directive());
                }
            }
            ExitCode::SUCCESS
        }
        "env" => {
            let (Some(sub), Some(file)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let load_env = || -> Result<Environment, String> {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| format!("reading {file}: {e}"))?;
                Environment::from_json(&text).map_err(|e| e.to_string())
            };
            let save_env = |env: &Environment| -> Result<(), String> {
                std::fs::write(file, env.to_json()).map_err(|e| format!("writing {file}: {e}"))
            };
            let result: Result<(), String> = match sub.as_str() {
                "create" => save_env(&Environment::new()),
                "add" => args
                    .get(3)
                    .ok_or_else(|| "env add needs a spec".to_string())
                    .and_then(|spec| {
                        let mut env = load_env()?;
                        env.add(spec).map_err(|e| e.to_string())?;
                        save_env(&env)?;
                        println!("{} roots", env.roots.len());
                        Ok(())
                    }),
                "concretize" => (|| {
                    let mut env = load_env()?;
                    let cache: std::sync::Arc<dyn CacheSource> =
                        std::sync::Arc::new(load_cache(flag_value(&args, "--cache")));
                    let cfg = if args.iter().any(|a| a == "--old") {
                        ConcretizerConfig::old_spack()
                    } else if args.iter().any(|a| a == "--no-splice") {
                        ConcretizerConfig::splice_spack_disabled()
                    } else {
                        ConcretizerConfig::splice_spack()
                    };
                    let lock = env
                        .concretize(&repo, &[cache], cfg)
                        .map_err(|e| e.to_string())?;
                    println!(
                        "concretized {} roots, {} distinct packages",
                        lock.roots.len(),
                        lock.package_count()
                    );
                    for (text, hash) in &lock.roots {
                        println!("  {text}  /{}", hash.short());
                    }
                    save_env(&env)
                })(),
                "install" => (|| {
                    let env = load_env()?;
                    let cache = load_cache(flag_value(&args, "--cache"));
                    let root = flag_value(&args, "--root").unwrap_or("./spackle-store");
                    let mut installer = Installer::new(InstallLayout::new(root));
                    let report = env
                        .install(&mut installer, &cache)
                        .map_err(|e| e.to_string())?;
                    println!(
                        "installed: built={} reused={} rewired={}",
                        report.built, report.reused, report.rewired
                    );
                    let problems = env.verify(&installer).map_err(|e| e.to_string())?;
                    if problems.is_empty() {
                        println!("verify: ok");
                        Ok(())
                    } else {
                        Err(format!("verify failed: {problems:?}"))
                    }
                })(),
                "status" => (|| {
                    let env = load_env()?;
                    println!("{} roots:", env.roots.len());
                    for r in &env.roots {
                        println!("  {r}");
                    }
                    match &env.lock {
                        Some(lock) => println!(
                            "concretized: {} distinct packages",
                            lock.package_count()
                        ),
                        None => println!("not concretized"),
                    }
                    Ok(())
                })(),
                other => Err(format!("unknown env subcommand {other}")),
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("spackle: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "repo" => {
            println!("packages: {}", repo.len());
            let mpi = Sym::intern("mpi");
            println!(
                "mpi providers: {:?}",
                repo.providers_of(mpi)
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
            );
            let splice_count: usize = repo.packages().map(|p| p.can_splice.len()).sum();
            println!("can_splice declarations: {splice_count}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
