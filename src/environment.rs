//! Spack-style *environments*: a named collection of root specs that
//! concretizes **jointly** (one configuration of every shared package)
//! into a lockfile of concrete specs, which can then be installed
//! reproducibly.
//!
//! This mirrors `spack.yaml`/`spack.lock`: the environment holds
//! abstract roots; `concretize` resolves them together (the paper's
//! joint-concretization mode, §6.3) and pins the result; `install`
//! realizes the pinned specs from caches or source.

use crate::prelude::*;
use serde::{Deserialize, Serialize};
use spackle_core::Goal;
use spackle_install::InstallReport;
use std::collections::BTreeMap;

/// A pinned, reproducible resolution of an environment.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct Lockfile {
    /// `(root spec text, concrete DAG hash)` in environment order.
    pub roots: Vec<(String, SpecHash)>,
    /// Every concrete root spec, keyed by DAG hash (each carries its
    /// full dependency closure).
    pub specs: BTreeMap<SpecHash, ConcreteSpec>,
}

impl Lockfile {
    /// The concrete spec pinned for a root, if present.
    pub fn spec_for(&self, root_text: &str) -> Option<&ConcreteSpec> {
        self.roots
            .iter()
            .find(|(t, _)| t == root_text)
            .and_then(|(_, h)| self.specs.get(h))
    }

    /// All distinct package nodes across the environment.
    pub fn package_count(&self) -> usize {
        let mut hashes = std::collections::BTreeSet::new();
        for spec in self.specs.values() {
            for n in spec.nodes() {
                hashes.insert(n.hash);
            }
        }
        hashes.len()
    }
}

/// An environment: named abstract roots plus an optional lockfile.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct Environment {
    /// Root spec texts, in insertion order.
    pub roots: Vec<String>,
    /// The pinned resolution, if `concretize` has run.
    pub lock: Option<Lockfile>,
}

/// Environment errors.
#[derive(Debug)]
pub enum EnvError {
    /// A root spec failed to parse.
    Parse(String),
    /// Concretization failed.
    Concretize(CoreError),
    /// Install failed.
    Install(spackle_install::InstallError),
    /// The environment has no lockfile yet.
    NotConcretized,
    /// Serialization problems.
    Io(String),
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::Parse(m) => write!(f, "parse error: {m}"),
            EnvError::Concretize(e) => write!(f, "concretize: {e}"),
            EnvError::Install(e) => write!(f, "install: {e}"),
            EnvError::NotConcretized => write!(f, "environment is not concretized"),
            EnvError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for EnvError {}

impl Environment {
    /// Empty environment.
    pub fn new() -> Environment {
        Environment::default()
    }

    /// Add a root spec (validated by parsing). Duplicates are rejected
    /// silently (idempotent adds).
    pub fn add(&mut self, spec_text: &str) -> Result<(), EnvError> {
        parse_spec(spec_text).map_err(|e| EnvError::Parse(e.to_string()))?;
        if !self.roots.iter().any(|r| r == spec_text) {
            self.roots.push(spec_text.to_string());
            self.lock = None; // roots changed: stale lock dropped
        }
        Ok(())
    }

    /// Remove a root spec; drops the lockfile if it was present.
    pub fn remove(&mut self, spec_text: &str) -> bool {
        let before = self.roots.len();
        self.roots.retain(|r| r != spec_text);
        if self.roots.len() != before {
            self.lock = None;
            true
        } else {
            false
        }
    }

    /// Jointly concretize all roots and pin the result. `caches` may be
    /// any mix of [`CacheSource`] backends (plain `BuildCache`s, chained
    /// views, ...) behind shared `Arc<dyn CacheSource>` handles — the
    /// same handles a long-lived service holds, so environment solves
    /// share indexes with every other solve in the process.
    pub fn concretize(
        &mut self,
        repo: &Repository,
        caches: &[std::sync::Arc<dyn CacheSource>],
        config: ConcretizerConfig,
    ) -> Result<&Lockfile, EnvError> {
        let mut goal = Goal {
            roots: Vec::new(),
            forbidden: Vec::new(),
        };
        for r in &self.roots {
            goal.roots
                .push(parse_spec(r).map_err(|e| EnvError::Parse(e.to_string()))?);
        }
        let mut c = Concretizer::new(repo).with_config(config);
        for cache in caches {
            c = c.with_reusable(cache);
        }
        let sol = c.concretize_goal(&goal).map_err(EnvError::Concretize)?;
        let mut lock = Lockfile::default();
        for (text, spec) in self.roots.iter().zip(&sol.specs) {
            lock.roots.push((text.clone(), spec.dag_hash()));
            lock.specs.insert(spec.dag_hash(), spec.clone());
        }
        self.lock = Some(lock);
        Ok(self.lock.as_ref().expect("just set"))
    }

    /// Install every pinned root with `installer`, pulling binaries from
    /// `cache`. Returns the accumulated report.
    pub fn install(
        &self,
        installer: &mut Installer,
        cache: &dyn CacheSource,
    ) -> Result<InstallReport, EnvError> {
        let lock = self.lock.as_ref().ok_or(EnvError::NotConcretized)?;
        let mut total = InstallReport::default();
        for (_, hash) in &lock.roots {
            let spec = &lock.specs[hash];
            let plan = InstallPlan::plan(spec, cache);
            let r = installer.install(spec, cache, &plan).map_err(EnvError::Install)?;
            total.built += r.built;
            total.reused += r.reused;
            total.rewired += r.rewired;
            total.relocation.in_place += r.relocation.in_place;
            total.relocation.lengthened += r.relocation.lengthened;
            total.relocation.untouched += r.relocation.untouched;
        }
        Ok(total)
    }

    /// Verify every pinned root against the installer's tree; returns all
    /// problems found.
    pub fn verify(&self, installer: &Installer) -> Result<Vec<String>, EnvError> {
        let lock = self.lock.as_ref().ok_or(EnvError::NotConcretized)?;
        let mut problems = Vec::new();
        for (_, hash) in &lock.roots {
            problems.extend(installer.verify(&lock.specs[hash]));
        }
        Ok(problems)
    }

    /// Serialize (environment + lockfile) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("environment serialization cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Environment, EnvError> {
        serde_json::from_str(s).map_err(|e| EnvError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo() -> Repository {
        Repository::from_packages([
            PackageBuilder::new("zlib")
                .version("1.3")
                .version("1.2.11")
                .build()
                .unwrap(),
            PackageBuilder::new("libpng")
                .version("1.6.39")
                .depends_on("zlib")
                .build()
                .unwrap(),
            PackageBuilder::new("cairo")
                .version("1.17.8")
                .depends_on("libpng")
                .depends_on("zlib")
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn add_remove_and_staleness() {
        let mut env = Environment::new();
        env.add("zlib").unwrap();
        env.add("zlib").unwrap(); // idempotent
        assert_eq!(env.roots.len(), 1);
        assert!(env.add("not a spec @@@").is_err());
        env.add("libpng").unwrap();

        env.concretize(&repo(), &[], ConcretizerConfig::default())
            .unwrap();
        assert!(env.lock.is_some());
        // Adding a new root invalidates the lock.
        env.add("cairo").unwrap();
        assert!(env.lock.is_none());

        env.concretize(&repo(), &[], ConcretizerConfig::default())
            .unwrap();
        assert!(env.remove("cairo"));
        assert!(env.lock.is_none());
        assert!(!env.remove("cairo"));
    }

    #[test]
    fn joint_concretization_shares_configurations() {
        let mut env = Environment::new();
        env.add("libpng").unwrap();
        env.add("cairo").unwrap();
        let lock = env
            .concretize(&repo(), &[], ConcretizerConfig::default())
            .unwrap();
        let png = lock.spec_for("libpng").unwrap();
        let cairo = lock.spec_for("cairo").unwrap();
        let z1 = png.node(png.find(Sym::intern("zlib")).unwrap()).hash;
        let z2 = cairo.node(cairo.find(Sym::intern("zlib")).unwrap()).hash;
        assert_eq!(z1, z2, "joint concretization: one zlib for all roots");
        // Distinct package nodes across the env: zlib, libpng, cairo.
        assert_eq!(lock.package_count(), 3);
    }

    #[test]
    fn lockfile_roundtrip_and_install() {
        let mut env = Environment::new();
        env.add("cairo ^zlib@1.2").unwrap();
        env.concretize(&repo(), &[], ConcretizerConfig::default())
            .unwrap();
        let json = env.to_json();
        let back = Environment::from_json(&json).unwrap();
        let lock = back.lock.as_ref().unwrap();
        assert_eq!(
            lock.spec_for("cairo ^zlib@1.2")
                .unwrap()
                .node(
                    lock.spec_for("cairo ^zlib@1.2")
                        .unwrap()
                        .find(Sym::intern("zlib"))
                        .unwrap()
                )
                .version,
            Version::parse("1.2.11").unwrap()
        );

        let mut installer = Installer::new(InstallLayout::new("/opt/env"));
        let report = back.install(&mut installer, &BuildCache::new()).unwrap();
        assert_eq!(report.built, 3);
        assert!(back.verify(&installer).unwrap().is_empty());
    }

    #[test]
    fn install_without_lock_errors() {
        let env = Environment::new();
        let mut installer = Installer::new(InstallLayout::new("/opt/env"));
        assert!(matches!(
            env.install(&mut installer, &BuildCache::new()),
            Err(EnvError::NotConcretized)
        ));
    }

    #[test]
    fn unsatisfiable_environment_reports() {
        let mut env = Environment::new();
        env.add("zlib@9.9").unwrap();
        let err = env
            .concretize(&repo(), &[], ConcretizerConfig::default())
            .unwrap_err();
        assert!(matches!(err, EnvError::Concretize(CoreError::Unsatisfiable)));
    }
}
