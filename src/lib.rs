#![warn(missing_docs)]

//! # Spackle
//!
//! A Rust reproduction of *Bridging the Gap Between Binary and Source
//! Based Package Management in Spack* (SC 2025): Spack-style dependency
//! resolution with **splicing** — a model of ABI-compatible binary
//! substitution that lets pre-compiled packages be relinked against
//! compatible dependencies instead of rebuilt, with full build
//! provenance.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`spec`] — specs, versions, variants, DAGs, the spec-syntax parser,
//!   DAG hashing, and splice mechanics (paper §3.1, §4).
//! * [`asp`] — a from-scratch Answer Set Programming engine (grounder +
//!   CDCL solver + optimizer), standing in for Clingo (§3.3, §5.1).
//! * [`repo`] — the package directive DSL, including `can_splice`
//!   (§3.2, §5.2).
//! * [`buildcache`] — reusable-spec indexes and synthetic binary
//!   artifacts (§6.1.3).
//! * [`install`] — install layout, binary relocation, and splice
//!   rewiring (§3.4, §4.2).
//! * [`core`] — the concretizer with automatic splicing (§5).
//! * [`audit`] — static analysis over repositories and the generated
//!   logic program, with structured diagnostics and dead-rule pruning.
//! * [`radiuss`] — the synthetic RADIUSS experiment stack (§6.1).
//!
//! ## Quickstart
//!
//! ```
//! use spackle::prelude::*;
//!
//! // A tiny repository: an app over zlib, with an ABI-compatible
//! // drop-in replacement for zlib declared via can_splice.
//! let repo = Repository::from_packages([
//!     PackageBuilder::new("zlib").version("1.3").build().unwrap(),
//!     PackageBuilder::new("zlib-ng")
//!         .version("2.1")
//!         .can_splice("zlib@1.3", "")
//!         .build()
//!         .unwrap(),
//!     PackageBuilder::new("app")
//!         .version("1.0")
//!         .depends_on("zlib")
//!         .build()
//!         .unwrap(),
//! ])
//! .unwrap();
//!
//! // Concretize the app.
//! let sol = Concretizer::new(&repo)
//!     .concretize(&parse_spec("app").unwrap())
//!     .unwrap();
//! assert_eq!(sol.spec().root().name.as_str(), "app");
//! ```

pub mod environment;

pub use spackle_asp as asp;
pub use spackle_audit as audit;
pub use spackle_buildcache as buildcache;
pub use spackle_core as core;
pub use spackle_install as install;
pub use spackle_radiuss as radiuss;
pub use spackle_repo as repo;
pub use spackle_spec as spec;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use crate::environment::{Environment, Lockfile};
    pub use spackle_audit::AuditReport;
    pub use spackle_buildcache::{
        Artifact, ArtifactError, BuildCache, CacheEntry, CacheError, CacheSource, ChainedCache,
    };
    pub use spackle_core::{
        Concretizer, ConcretizerConfig, CoreError, Encoding, Goal, Solution,
    };
    pub use spackle_install::{InstallError, InstallLayout, InstallPlan, Installer};
    pub use spackle_repo::{PackageBuilder, PackageDef, Repository};
    pub use spackle_spec::{
        parse_spec, AbstractSpec, ConcreteSpec, DepTypes, Os, SpecHash, Sym, Target, Version,
    };
}
