//! The paper's Fig 2 walkthrough: splicing at the spec-DAG level, with
//! build provenance.
//!
//! Two pre-compiled packages exist: `T ^H ^Z@1.0` and `H' ^S ^Z@1.1`
//! (where H' is a newer H). A request for `T ^H'` is satisfied by a
//! *transitive* splice; a request for `T ^H' ^Z@1.0` by a further
//! *intransitive* splice that restores Z@1.0.
//!
//! Run with: `cargo run --example splice_walkthrough`

use spackle::prelude::*;
use spackle::spec::spec::ConcreteSpecBuilder;

fn v(s: &str) -> Version {
    Version::parse(s).unwrap()
}

fn show(label: &str, spec: &ConcreteSpec) {
    println!("{label}: {spec}");
    for id in spec.all_ids() {
        let n = spec.node(id);
        if let Some(bs) = &n.build_spec {
            println!(
                "    {}@{} is spliced; built as: {}",
                n.name,
                n.version,
                bs.format_flat()
            );
        }
    }
}

fn main() {
    // The already-built specs (gray in Fig 2).
    let t = {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("z", v("1.0"));
        let h = b.node("h", v("1.0"));
        let t = b.node("t", v("1.0"));
        b.edge(h, z, DepTypes::LINK_RUN);
        b.edge(t, h, DepTypes::LINK_RUN);
        b.edge(t, z, DepTypes::LINK_RUN);
        b.build(t).unwrap()
    };
    let h_prime = {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("z", v("1.1"));
        let s = b.node("s", v("1.0"));
        let h = b.node("h", v("2.0"));
        b.edge(h, s, DepTypes::LINK_RUN);
        b.edge(h, z, DepTypes::LINK_RUN);
        b.build(h).unwrap()
    };
    show("built  T ", &t);
    show("built  H'", &h_prime);
    println!();

    // Request: T ^H'. Transitive splice (blue background in Fig 2):
    // H' replaces H, and the shared Z unifies to H''s copy (Z@1.1).
    let step1 = t.splice(&h_prime, true).unwrap();
    show("T ^H'          (transitive)", &step1);
    assert_eq!(
        step1
            .node(step1.find(Sym::intern("z")).unwrap())
            .version,
        v("1.1")
    );
    println!();

    // Request: T ^H' ^Z@1.0. Intransitive result (red background):
    // Z@1.0 spliced back in; now H' is relinked too, so it also gains
    // build provenance.
    let z10 = {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("z", v("1.0"));
        b.build(z).unwrap()
    };
    let step2 = step1.splice(&z10, false).unwrap();
    show("T ^H' ^Z@1.0   (intransitive)", &step2);
    assert_eq!(
        step2
            .node(step2.find(Sym::intern("z")).unwrap())
            .version,
        v("1.0")
    );
    let h_node = step2.node(step2.find(Sym::intern("h")).unwrap());
    assert_eq!(
        h_node.build_spec.as_ref().unwrap().dag_hash(),
        h_prime.dag_hash(),
        "H' provenance records how it was actually built"
    );
    println!();
    println!("note: the spliced specs hash differently from natively-built");
    println!("equivalents, so reproducibility is preserved (paper §4.1).");
}
