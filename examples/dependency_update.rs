//! The "rebuild the world" scenario (paper §2.2, §4): updating a deep
//! dependency — say a zlib security release — normally cascades rebuilds
//! through every dependent. With an ABI-compatibility declaration, only
//! the updated package builds; everything above it is spliced and
//! rewired.
//!
//! Run with: `cargo run --example dependency_update`

use spackle::prelude::*;

fn main() {
    // zlib 1.3.1 is an ABI-compatible patch release of 1.3; its package
    // declares that (can_splice with a when-clause).
    let repo = Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3.1")
            .version("1.3")
            .can_splice("zlib@=1.3", "@1.3.1")
            .build()
            .unwrap(),
        PackageBuilder::new("libpng")
            .version("1.6.39")
            .depends_on("zlib")
            .build()
            .unwrap(),
        PackageBuilder::new("freetype")
            .version("2.13.0")
            .depends_on("libpng")
            .depends_on("zlib")
            .build()
            .unwrap(),
        PackageBuilder::new("harfbuzz")
            .version("7.3.0")
            .depends_on("freetype")
            .build()
            .unwrap(),
    ])
    .unwrap();

    // The world, as originally built with zlib@1.3 and cached.
    let original = Concretizer::new(&repo)
        .concretize(&parse_spec("harfbuzz ^zlib@=1.3").unwrap())
        .unwrap();
    println!("installed world : {}", original.spec());
    let layout = InstallLayout::new("/opt/spackle");
    let mut installer = Installer::new(layout);
    let plan = InstallPlan::plan(original.spec(), &BuildCache::new());
    installer
        .install(original.spec(), &BuildCache::new(), &plan)
        .unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec_with(original.spec(), |sub| {
        installer.build_artifact(sub, sub.root_id())
    });

    // Security update: require zlib@1.3.1 everywhere.
    let goal = parse_spec("harfbuzz ^zlib@1.3.1").unwrap();

    // Without splicing: the whole chain rebuilds.
    let old = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::old_spack())
        .with_reusable(cache.clone())
        .concretize(&goal)
        .unwrap();
    println!(
        "old spack       : rebuilds {} packages: {:?}",
        old.built.len(),
        old.built.iter().map(|s| s.as_str()).collect::<Vec<_>>()
    );
    assert_eq!(old.built.len(), 4, "full cascade");

    // With splicing: only zlib itself builds; dependents are spliced.
    let new = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(cache.clone())
        .concretize(&goal)
        .unwrap();
    println!(
        "splice spack    : rebuilds {} package(s): {:?}; splices: {}",
        new.built.len(),
        new.built.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        new.spliced.len()
    );
    assert_eq!(new.built.len(), 1);
    assert_eq!(new.built[0].as_str(), "zlib");
    assert!(!new.spliced.is_empty());

    // Deploy: one build + rewires.
    let spec = new.spec();
    let plan = InstallPlan::plan(spec, &cache);
    let report = installer.install(spec, &cache, &plan).unwrap();
    println!(
        "deploy          : built={} reused={} rewired={}",
        report.built, report.reused, report.rewired
    );
    let problems = installer.verify(spec);
    assert!(problems.is_empty(), "verify: {problems:?}");
    println!("verified        : world now runs on zlib@1.3.1 without a cascade");
}
