//! Quickstart: define packages, concretize a spec, install it, verify.
//!
//! Run with: `cargo run --example quickstart`

use spackle::prelude::*;

fn main() {
    // 1. A small package repository, written with the directive DSL
    //    (paper §3.2). `hdf5` has a conditional MPI dependency.
    let repo = Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.13")
            .variant_bool("optimize", true)
            .build()
            .unwrap(),
        PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("openmpi")
            .version("4.1.5")
            .provides("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("cmake")
            .version("3.27.7")
            .build()
            .unwrap(),
        PackageBuilder::new("hdf5")
            .version("1.14.5")
            .version("1.12.2")
            .variant_bool("mpi", true)
            .depends_on("zlib")
            .depends_on_when("mpi", "+mpi")
            .build_depends_on("cmake")
            .build()
            .unwrap(),
    ])
    .unwrap();
    repo.validate().unwrap();

    // 2. Concretize an abstract spec written in spec syntax (Table 1).
    let goal = parse_spec("hdf5@1.14 +mpi ^zlib@1.3").unwrap();
    let solution = Concretizer::new(&repo).concretize(&goal).unwrap();
    let spec = solution.spec();

    println!("concretized: {spec}");
    println!("dag hash:    /{}", spec.dag_hash().short());
    println!("to build:    {:?}", solution.built);

    // 3. Install (everything from source here) and verify the installed
    //    tree's embedded dependency paths.
    let mut installer = Installer::new(InstallLayout::new("/opt/spackle"));
    let plan = InstallPlan::plan(spec, &BuildCache::new());
    let report = installer.install(spec, &BuildCache::new(), &plan).unwrap();
    println!(
        "installed:   {} built, {} reused, {} rewired",
        report.built, report.reused, report.rewired
    );
    let problems = installer.verify(spec);
    assert!(problems.is_empty(), "verification: {problems:?}");
    println!("verified:    all embedded dependency paths resolve");

    // 4. Cache the build; a second install reuses every binary.
    let mut cache = BuildCache::new();
    cache.add_spec_with(spec, |sub| {
        installer.build_artifact(sub, sub.root_id())
    });
    let sol2 = Concretizer::new(&repo)
        .with_reusable(cache.clone())
        .concretize(&goal)
        .unwrap();
    println!(
        "re-resolve:  {} reused, {} to build",
        sol2.reused.len(),
        sol2.built.len()
    );
    assert!(sol2.built.is_empty());
}
