//! Automated ABI discovery — the paper's §8 future work, implemented.
//!
//! Builds a buildcache containing three MPI implementations and lets
//! `buildcache::suggest_splices` discover which can replace which from
//! their binary interfaces alone: symbol supersets (API direction) and
//! type-layout agreement (the §2.1 `MPI_Comm` problem).
//!
//! Run with: `cargo run --example abi_discovery`

use spackle::buildcache::{abi_compatible, suggest_splices, AbiIncompatibility};
use spackle::prelude::*;
use spackle::radiuss::{farm_artifact, radiuss_repo, with_mpiabi};

fn main() {
    let repo = with_mpiabi(&radiuss_repo());

    // Populate a cache with the three MPI implementations (plus a
    // consumer, to show non-MPI packages don't cross-match).
    let mut cache = BuildCache::new();
    for goal in ["mpich", "openmpi", "mpiabi", "zlib"] {
        let sol = Concretizer::new(&repo)
            .concretize(&parse_spec(goal).unwrap())
            .unwrap();
        cache.add_spec_with(sol.spec(), farm_artifact);
    }
    println!("cache: {} specs\n", cache.len());

    // Pairwise explanation of (in)compatibility.
    let art_of = |name: &str| {
        cache
            .entries()
            .find(|e| e.spec.root().name.as_str() == name)
            .expect("cached above")
            .artifact()
            .expect("valid artifact")
    };
    let mpich = art_of("mpich");
    let openmpi = art_of("openmpi");
    let mpiabi = art_of("mpiabi");

    println!("mpiabi  -> mpich : {:?}", abi_compatible(&mpiabi, &mpich));
    match abi_compatible(&openmpi, &mpich) {
        Err(AbiIncompatibility::LayoutMismatch(m)) => {
            println!("openmpi -> mpich : layout mismatch {m:?}");
            println!("                   (the paper's 2.1 example: MPICH lays MPI_Comm");
            println!("                    out as a 32-bit int, Open MPI as a pointer)");
        }
        other => println!("openmpi -> mpich : {other:?}"),
    }
    match abi_compatible(&mpich, &mpiabi) {
        Err(AbiIncompatibility::MissingSymbols(m)) => {
            println!("mpich   -> mpiabi: missing {m:?} (one-directional compatibility)");
        }
        other => println!("mpich   -> mpiabi: {other:?}"),
    }

    // The audit reproduces exactly the declaration the mpiabi package
    // carries in its package definition.
    println!("\ndiscovered splice opportunities:");
    for s in suggest_splices(&cache).expect("in-memory cache cannot fail") {
        println!("  {}", s.directive());
    }
    let declared = &repo
        .get(Sym::intern("mpiabi"))
        .unwrap()
        .can_splice[0];
    println!(
        "\ndeclared in package.py equivalent: can_splice(\"{}\", when=\"{}\")",
        declared.target,
        if declared.when.is_empty() {
            "always".to_string()
        } else {
            declared.when.to_string()
        }
    );
}
