//! The paper's motivating scenario (§1): deploying Trilinos on an HPE
//! Cray cluster.
//!
//! A build farm compiles the stack against the general-purpose MPICH and
//! publishes a buildcache. The cluster provides Cray MPICH — binary-only,
//! ABI-compatible with `mpich@3.4.3` (declared via `can_splice`). With
//! splicing, deployment reuses every farm binary and merely *rewires*
//! the MPI-dependent ones; without it, everything MPI-dependent would
//! rebuild.
//!
//! Run with: `cargo run --example cray_deploy`

use spackle::core::Goal;
use spackle::prelude::*;

fn repo_common() -> Vec<PackageDef> {
    vec![
        PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("openblas").version("0.3.23").build().unwrap(),
        PackageBuilder::new("metis").version("5.1.0").build().unwrap(),
        PackageBuilder::new("trilinos")
            .version("14.0.0")
            .depends_on("openblas")
            .depends_on("metis")
            .depends_on("mpi")
            .build()
            .unwrap(),
    ]
}

fn main() {
    // ---- on the build farm: no cray-mpich exists here ----
    let farm_repo = Repository::from_packages(repo_common()).unwrap();
    let farm_goal = parse_spec("trilinos ^mpich").unwrap();
    let farm_sol = Concretizer::new(&farm_repo).concretize(&farm_goal).unwrap();
    println!("farm build : {}", farm_sol.spec());

    // "Build" it and publish the buildcache.
    let farm_layout = InstallLayout::new("/buildfarm/store");
    let mut farm = Installer::new(farm_layout);
    let plan = InstallPlan::plan(farm_sol.spec(), &BuildCache::new());
    farm.install(farm_sol.spec(), &BuildCache::new(), &plan)
        .unwrap();
    let mut cache = BuildCache::new();
    cache.add_spec_with(farm_sol.spec(), |sub| {
        farm.build_artifact(sub, sub.root_id())
    });
    println!("published  : {} specs in the buildcache", cache.len());

    // ---- on the Cray cluster: cray-mpich is available and declares
    //      ABI compatibility with the reference mpich ----
    let mut cluster_pkgs = repo_common();
    cluster_pkgs.push(
        PackageBuilder::new("cray-mpich")
            .version("8.1.25")
            .provides("mpi")
            .can_splice("mpich@3.4.3", "")
            .build()
            .unwrap(),
    );
    let cluster_repo = Repository::from_packages(cluster_pkgs).unwrap();

    // The site requires Cray MPICH: trilinos ^cray-mpich.
    let goal = Goal::single(parse_spec("trilinos ^cray-mpich").unwrap());

    // Old spack: no ABI model, so Trilinos must rebuild on the cluster.
    let old = Concretizer::new(&cluster_repo)
        .with_config(ConcretizerConfig::old_spack())
        .with_reusable(cache.clone())
        .concretize_goal(&goal)
        .unwrap();
    println!(
        "old spack  : rebuilds {:?} on the cluster",
        old.built.iter().map(|s| s.as_str()).collect::<Vec<_>>()
    );
    assert!(old.built.iter().any(|s| s.as_str() == "trilinos"));

    // Splice spack: reuse the farm's Trilinos, splice cray-mpich in.
    let new = Concretizer::new(&cluster_repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(cache.clone())
        .concretize_goal(&goal)
        .unwrap();
    println!(
        "splice spack: builds {:?}, splices {:?}",
        new.built.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        new.spliced
            .iter()
            .map(|s| format!("{}<-{}", s.replaced, s.replacement))
            .collect::<Vec<_>>()
    );
    assert!(
        !new.built.iter().any(|s| s.as_str() == "trilinos"),
        "trilinos must NOT rebuild"
    );
    assert!(!new.spliced.is_empty());
    let spec = &new.specs[0];
    println!("deployed   : {spec}");

    // Install on the cluster: cray-mpich "exists on the system" — we
    // model it as a locally built binary; trilinos is REWIRED from the
    // farm binary, not rebuilt.
    let mut cluster = Installer::new(InstallLayout::new("/lustre/sw/spackle"));
    let plan = InstallPlan::plan(spec, &cache);
    let report = cluster.install(spec, &cache, &plan).unwrap();
    println!(
        "install    : {} built (cray-mpich), {} reused, {} rewired (trilinos)",
        report.built, report.reused, report.rewired
    );
    assert_eq!(report.rewired, 1);
    let problems = cluster.verify(spec);
    assert!(problems.is_empty(), "verify: {problems:?}");
    println!("verified   : trilinos now links against cray-mpich");
}
