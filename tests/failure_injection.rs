//! Failure injection across the stack: corrupt artifacts, missing
//! binaries, unsatisfiable goals, malformed cache indexes, and invalid
//! splices must all surface as errors, never as silent misbehavior.

use spackle::buildcache::ArtifactError;
use spackle::core::Goal;
use spackle::install::InstallError;
use spackle::prelude::*;
use spackle::spec::spec::ConcreteSpecBuilder;

fn mini_repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2")
            .build()
            .unwrap(),
        PackageBuilder::new("zlib-ng")
            .version("2.1")
            .can_splice("zlib", "")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("zlib")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

#[test]
fn unsatisfiable_version_is_reported() {
    let repo = mini_repo();
    let err = Concretizer::new(&repo)
        .concretize(&parse_spec("app ^zlib@9.9").unwrap())
        .unwrap_err();
    assert!(matches!(err, CoreError::Unsatisfiable), "{err}");
}

#[test]
fn conflicting_forbidden_root_is_unsat() {
    let repo = mini_repo();
    let mut goal = Goal::single(parse_spec("app").unwrap());
    goal.forbidden.push(Sym::intern("app"));
    let err = Concretizer::new(&repo)
        .concretize_goal(&goal)
        .unwrap_err();
    assert!(matches!(err, CoreError::Unsatisfiable), "{err}");
}

#[test]
fn corrupt_artifact_bytes_rejected_at_install() {
    let repo = mini_repo();
    let sol = Concretizer::new(&repo)
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let mut cache = BuildCache::new();
    // Deliberately corrupt artifacts.
    cache.add_spec_with(sol.spec(), |_| b"not an artifact".to_vec());
    let plan = InstallPlan::plan(sol.spec(), &cache);
    let mut inst = Installer::new(InstallLayout::new("/opt"));
    let err = inst.install(sol.spec(), &cache, &plan).unwrap_err();
    assert!(matches!(err, InstallError::Artifact(_)), "{err}");
}

#[test]
fn truncated_artifact_parse_errors() {
    let art = Artifact::build("/opt/x-1.0", &[], vec!["sym".into()]);
    let bytes = art.to_bytes();
    for cut in [0, 4, bytes.len() / 2] {
        assert!(matches!(
            Artifact::from_bytes(&bytes[..cut]),
            Err(ArtifactError::Corrupt(_))
        ));
    }
}

#[test]
fn corrupt_cache_index_json_rejected() {
    assert!(BuildCache::from_json("{\"entries\": 42}").is_err());
    assert!(BuildCache::from_json("").is_err());
    // Valid JSON but invalid hash key.
    assert!(BuildCache::from_json(r#"{"entries":{"nothash":{"spec":{},"artifact":[]}}}"#).is_err());
}

#[test]
fn rewire_without_binary_fails_loudly() {
    let repo = mini_repo();
    // Build app ^zlib@1.3, cache nothing, then splice zlib-ng in.
    let sol = Concretizer::new(&repo)
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let mut zb = ConcreteSpecBuilder::new();
    let z = zb.node("zlib-ng", Version::parse("2.1").unwrap());
    let zng = zb.build(z).unwrap();
    let spliced = sol
        .spec()
        .splice_as(Sym::intern("zlib"), &zng, true)
        .unwrap();

    let cache = BuildCache::new(); // empty: no binary for app's build spec
    let plan = InstallPlan::plan(&spliced, &cache);
    let mut inst = Installer::new(InstallLayout::new("/opt"));
    let err = inst.install(&spliced, &cache, &plan).unwrap_err();
    assert!(
        matches!(err, InstallError::MissingBuildSpecBinary { .. }),
        "{err}"
    );
}

#[test]
fn splicing_the_root_is_rejected() {
    let repo = mini_repo();
    let sol = Concretizer::new(&repo)
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let mut ab = ConcreteSpecBuilder::new();
    let a = ab.node("app", Version::parse("1.0").unwrap());
    let app2 = ab.build(a).unwrap();
    assert!(sol.spec().splice(&app2, true).is_err());
}

#[test]
fn unknown_goal_package() {
    let repo = mini_repo();
    let err = Concretizer::new(&repo)
        .concretize(&parse_spec("nonexistent").unwrap())
        .unwrap_err();
    assert!(matches!(err, CoreError::BadGoal(_)));
}

#[test]
fn anonymous_goal_rejected() {
    let repo = mini_repo();
    let err = Concretizer::new(&repo)
        .concretize(&parse_spec("@1.0").unwrap())
        .unwrap_err();
    assert!(matches!(err, CoreError::BadGoal(_)));
}

#[test]
fn verify_reports_missing_installs() {
    let repo = mini_repo();
    let sol = Concretizer::new(&repo)
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let inst = Installer::new(InstallLayout::new("/opt"));
    // Nothing installed: verify must list every prefix as missing.
    let problems = inst.verify(sol.spec());
    assert_eq!(problems.len(), sol.spec().len());
}
