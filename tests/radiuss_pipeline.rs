//! Integration: concretize → cache → splice → install → rewire → verify
//! on a subset of the real RADIUSS stack, plus the paper's correctness
//! claims (RQ1 solution equivalence, RQ2 splice synthesis).

use spackle::core::Goal;
use spackle::prelude::*;
use spackle::radiuss::{farm_artifact, radiuss_repo, with_mpiabi, with_replicas};
use std::sync::OnceLock;

/// Shared fixture: RADIUSS repo + a buildcache of a few roots
/// concretized with mpich (the reference MPI).
struct Fixture {
    repo: Repository,
    repo_mpiabi: Repository,
    cache: std::sync::Arc<dyn CacheSource>,
}

fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let repo = radiuss_repo();
        let repo_mpiabi = with_mpiabi(&repo);
        let mut cache = BuildCache::new();
        for (root, goal) in [
            ("hypre", "hypre ^mpich"),
            ("mfem", "mfem ^mpich"),
            ("conduit", "conduit ^mpich"),
            ("py-shroud", "py-shroud"),
        ] {
            let sol = Concretizer::new(&repo)
                .concretize(&parse_spec(goal).unwrap())
                .unwrap_or_else(|e| panic!("fixture {root}: {e}"));
            cache.add_spec_with(sol.spec(), farm_artifact);
        }
        Fixture {
            repo,
            repo_mpiabi,
            cache: std::sync::Arc::new(cache),
        }
    })
}

#[test]
fn rq1_encodings_agree_on_radiuss() {
    let fx = fixture();
    for goal in ["hypre", "mfem", "py-shroud", "conduit ~mpi"] {
        let spec = parse_spec(goal).unwrap();
        let old = Concretizer::new(&fx.repo)
            .with_config(ConcretizerConfig::old_spack())
            .with_reusable(&fx.cache)
            .concretize(&spec)
            .unwrap();
        let new = Concretizer::new(&fx.repo)
            .with_config(ConcretizerConfig::splice_spack_disabled())
            .with_reusable(&fx.cache)
            .concretize(&spec)
            .unwrap();
        assert_eq!(
            old.spec().dag_hash(),
            new.spec().dag_hash(),
            "encodings disagree on {goal}"
        );
        assert_eq!(old.built.len(), new.built.len());
    }
}

#[test]
fn rq2_splice_end_to_end_with_install() {
    let fx = fixture();
    // Request mfem with the ABI-compatible mock.
    let sol = Concretizer::new(&fx.repo_mpiabi)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(&fx.cache)
        .concretize(&parse_spec("mfem ^mpiabi").unwrap())
        .unwrap();
    assert!(!sol.spliced.is_empty(), "must synthesize splices");
    assert!(
        sol.built.iter().all(|b| b.as_str() == "mpiabi"),
        "only the mock itself may build, got {:?}",
        sol.built
    );
    let spec = sol.spec();
    assert!(spec.find(Sym::intern("mpiabi")).is_some());
    assert!(spec.find(Sym::intern("mpich")).is_none());

    // Install: spliced parents rewire from cached binaries.
    let mut inst = Installer::new(InstallLayout::new("/opt/spackle-farm/store"));
    let plan = InstallPlan::plan(spec, &*fx.cache);
    let report = inst.install(spec, &*fx.cache, &plan).unwrap();
    assert!(report.rewired >= 1, "report: {report:?}");
    assert_eq!(report.built, 1); // mpiabi
    let problems = inst.verify(spec);
    assert!(problems.is_empty(), "verify: {problems:?}");
}

#[test]
fn splice_provenance_survives_interpretation() {
    let fx = fixture();
    let sol = Concretizer::new(&fx.repo_mpiabi)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(&fx.cache)
        .concretize(&parse_spec("hypre ^mpiabi").unwrap())
        .unwrap();
    let spec = sol.spec();
    let hypre = spec.node(spec.find(Sym::intern("hypre")).unwrap());
    let bs = hypre
        .build_spec
        .as_ref()
        .expect("spliced hypre carries provenance");
    // The build spec matches the cached binary we spliced from.
    assert!(
        fx.cache.get(bs.dag_hash()).unwrap().is_some(),
        "provenance points at a cached build"
    );
    // And the provenance's MPI is mpich, while the runtime MPI is mpiabi.
    assert!(bs.find(Sym::intern("mpich")).is_some());
    assert!(spec.find(Sym::intern("mpich")).is_none());
}

#[test]
fn rq4_replicas_all_valid_choices() {
    let fx = fixture();
    let repo = with_replicas(&fx.repo, 10);
    let mut goal = Goal::single(parse_spec("hypre").unwrap());
    goal.forbidden.push(Sym::intern("mpich"));
    let sol = Concretizer::new(&repo)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(&fx.cache)
        .concretize_goal(&goal)
        .unwrap();
    let spec = &sol.specs[0];
    assert!(spec.find(Sym::intern("mpich")).is_none());
    // Exactly one MPI implementation, and it is one of the replicas or
    // openmpi.
    let impls: Vec<&str> = spec
        .nodes()
        .iter()
        .map(|n| n.name.as_str())
        .filter(|n| n.starts_with("mpiabi") || *n == "openmpi")
        .collect();
    assert_eq!(impls.len(), 1, "impls: {impls:?}");
}

#[test]
fn joint_concretization_of_mpi_subset() {
    let fx = fixture();
    let goal = Goal {
        roots: vec![
            parse_spec("hypre ^mpiabi").unwrap(),
            parse_spec("mfem ^mpiabi").unwrap(),
        ],
        forbidden: vec![],
    };
    let sol = Concretizer::new(&fx.repo_mpiabi)
        .with_config(ConcretizerConfig::splice_spack())
        .with_reusable(&fx.cache)
        .concretize_goal(&goal)
        .unwrap();
    assert_eq!(sol.specs.len(), 2);
    // Both share the same mpiabi node.
    let h1 = sol.specs[0]
        .node(sol.specs[0].find(Sym::intern("mpiabi")).unwrap())
        .hash;
    let h2 = sol.specs[1]
        .node(sol.specs[1].find(Sym::intern("mpiabi")).unwrap())
        .hash;
    assert_eq!(h1, h2);
}
