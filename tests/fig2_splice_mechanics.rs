//! Integration test: the paper's Fig 2 scenario end-to-end, including
//! installation and rewiring of the spliced result.

use spackle::prelude::*;
use spackle::spec::spec::ConcreteSpecBuilder;

fn v(s: &str) -> Version {
    Version::parse(s).unwrap()
}

fn build_t() -> ConcreteSpec {
    let mut b = ConcreteSpecBuilder::new();
    let z = b.node("z", v("1.0"));
    let h = b.node("h", v("1.0"));
    let t = b.node("t", v("1.0"));
    b.edge(h, z, DepTypes::LINK_RUN);
    b.edge(t, h, DepTypes::LINK_RUN);
    b.edge(t, z, DepTypes::LINK_RUN);
    b.build(t).unwrap()
}

fn build_h_prime() -> ConcreteSpec {
    let mut b = ConcreteSpecBuilder::new();
    let z = b.node("z", v("1.1"));
    let s = b.node("s", v("1.0"));
    let h = b.node("h", v("2.0"));
    b.edge(h, s, DepTypes::LINK_RUN);
    b.edge(h, z, DepTypes::LINK_RUN);
    b.build(h).unwrap()
}

#[test]
fn transitive_then_intransitive_with_install() {
    let t = build_t();
    let hp = build_h_prime();

    // "Build" both on a farm and publish binaries.
    let farm = Installer::new(InstallLayout::new("/opt/spackle"));
    let mut cache = BuildCache::new();
    cache.add_spec_with(&t, |s| farm.build_artifact(s, s.root_id()));
    cache.add_spec_with(&hp, |s| farm.build_artifact(s, s.root_id()));

    // T ^H' by transitive splice.
    let step1 = t.splice(&hp, true).unwrap();
    assert_eq!(
        step1.node(step1.find(Sym::intern("z")).unwrap()).version,
        v("1.1"),
        "shared Z unifies to the replacement's copy"
    );
    assert!(step1.root().is_spliced());

    // Install: T is rewired (its binary is the original T build), H' and
    // its subtree are reused as-is.
    let mut inst = Installer::new(InstallLayout::new("/opt/spackle"));
    let plan = InstallPlan::plan(&step1, &cache);
    assert_eq!(plan.builds(), 0);
    let report = inst.install(&step1, &cache, &plan).unwrap();
    assert_eq!(report.rewired, 1);
    assert!(inst.verify(&step1).is_empty(), "{:?}", inst.verify(&step1));

    // T ^H' ^Z@1.0 by a further intransitive splice.
    let z10 = {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("z", v("1.0"));
        b.build(z).unwrap()
    };
    // Z@1.0 was part of T's original build, so its binary exists.
    let step2 = step1.splice(&z10, false).unwrap();
    assert_eq!(
        step2.node(step2.find(Sym::intern("z")).unwrap()).version,
        v("1.0")
    );
    // Now H' is spliced as well (relinked against Z@1.0), and its build
    // spec records the real build.
    let h = step2.node(step2.find(Sym::intern("h")).unwrap());
    assert_eq!(h.build_spec.as_ref().unwrap().dag_hash(), hp.dag_hash());

    let mut inst2 = Installer::new(InstallLayout::new("/opt/spackle"));
    let plan2 = InstallPlan::plan(&step2, &cache);
    assert_eq!(plan2.builds(), 0, "still zero compilations");
    let report2 = inst2.install(&step2, &cache, &plan2).unwrap();
    assert_eq!(report2.rewired, 2, "both T and H' rewired");
    assert!(inst2.verify(&step2).is_empty(), "{:?}", inst2.verify(&step2));
}

#[test]
fn spliced_and_native_hashes_differ_but_runtime_shape_matches() {
    let t = build_t();
    let hp = build_h_prime();
    let spliced = t.splice(&hp, true).unwrap();

    // A natively built T ^H'(2.0) ^Z@1.1.
    let native = {
        let mut b = ConcreteSpecBuilder::new();
        let z = b.node("z", v("1.1"));
        let s = b.node("s", v("1.0"));
        let h = b.node("h", v("2.0"));
        let t = b.node("t", v("1.0"));
        b.edge(h, s, DepTypes::LINK_RUN);
        b.edge(h, z, DepTypes::LINK_RUN);
        b.edge(t, h, DepTypes::LINK_RUN);
        b.edge(t, z, DepTypes::LINK_RUN);
        b.build(t).unwrap()
    };

    // Same runtime package set...
    let names = |s: &ConcreteSpec| {
        let mut v: Vec<&str> = s.nodes().iter().map(|n| n.name.as_str()).collect();
        v.sort();
        v
    };
    assert_eq!(names(&spliced), names(&native));
    // ...but distinguishable hashes (provenance is part of identity).
    assert_ne!(spliced.dag_hash(), native.dag_hash());
}
