//! The audit gate CI enforces: the shipped demo repository and the
//! exact ASP program the concretizer hands the solver must be free of
//! error-severity findings. This is `spackle audit` as a library call,
//! so the gate fails in `cargo test` before CI even reaches the CLI.

use spackle::audit::{self, Severity};
use spackle::core::Goal;
use spackle::prelude::*;
use spackle::radiuss::{radiuss_repo, with_mpiabi};

#[test]
fn shipped_repository_and_program_audit_clean_of_errors() {
    let repo = with_mpiabi(&radiuss_repo());
    let goal = Goal::single(parse_spec("hypre").unwrap());
    let enc = Concretizer::new(&repo).program_text(&goal).unwrap();
    let program = spackle::asp::parse_program(&enc.program).unwrap();
    let goals = [Sym::intern("attr"), Sym::intern("splice_to")];

    let report = audit::audit(&repo, &program, &goals);
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "shipped artifacts have audit errors:\n{}",
        report.render_human()
    );

    // The warnings the empty-cache program legitimately carries are the
    // reuse/splice bridge rules — exactly what prune_dead removes. The
    // audit and the pruner must agree that pruning has work to do.
    let dead_rules = report
        .diagnostics
        .iter()
        .filter(|d| d.code == audit::Code::L004)
        .count();
    let (_, prune) = program.prune_unreachable(&[Sym::intern("attr"), Sym::intern("splice_to")]);
    assert!(dead_rules > 0, "expected dead-rule findings on the empty-cache program");
    assert!(
        prune.dropped_rules() >= dead_rules,
        "pruner dropped {} rules but audit flagged {dead_rules}",
        prune.dropped_rules()
    );
}
