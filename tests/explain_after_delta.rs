//! `--explain` provenance after a delta update.
//!
//! The incremental-reconcretization pipeline retains prepared programs
//! across repository deltas and re-grounds only affected segments; the
//! unsat-core explainer maps core members back to source directives by
//! looking the originating definitions up in the *current* repository.
//! This regression suite pins the interaction: after mutating the
//! RADIUSS universe the way `spackled update` does — `upsert` a new
//! version, compute the [`repo_delta`], `apply_delta` on the warm
//! ground cache — the `explain-demo+newzlib` planted conflict must
//! still produce the same minimal core, naming both clashing
//! `depends_on` directives with byte spans that select the version
//! tokens inside the rendered directive text.

use spackle::audit::{explanation_report, Code, Provenance};
use spackle::core::{repo_delta, Concretizer, CoreError, EncodeOrigin, Goal, GroundCache};
use spackle::radiuss::{radiuss_repo, with_mpiabi};
use spackle::repo::Repository;
use spackle::spec::{parse_spec, Sym, Version};

/// Assert the planted two-directive conflict explains correctly against
/// `repo`, returning the rendered E002 directive texts for span checks.
fn assert_explains(repo: &Repository, label: &str) {
    let conc = Concretizer::new(repo);
    let goal = Goal::single(parse_spec("explain-demo+newzlib").unwrap());

    // The plain path agrees it is UNSAT...
    assert!(
        matches!(conc.concretize_goal(&goal), Err(CoreError::Unsatisfiable)),
        "{label}: explain-demo+newzlib must stay unsatisfiable"
    );
    // ...and the explainer produces a finished, provenance-mapped core.
    let ex = conc
        .explain_goal(&goal)
        .unwrap()
        .expect("unsat goal must yield an explanation");
    assert!(ex.minimal, "{label}: ample budget, minimization must finish");

    let mut pinned: Vec<String> = ex
        .directive_entries()
        .filter_map(|e| match &e.origin {
            Some(EncodeOrigin::DependsOn { package, .. })
                if package.as_str() == "explain-demo" =>
            {
                Some(format!("{:?}", e.origin))
            }
            _ => None,
        })
        .collect();
    pinned.sort();
    pinned.dedup();
    assert_eq!(
        pinned.len(),
        2,
        "{label}: exactly the two planted pins must be cited: {pinned:?}"
    );

    // The rendered report must carry spans into the directive text that
    // select the conflicting version tokens.
    let report = explanation_report(repo, "explain-demo+newzlib", &ex);
    let e002: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::E002)
        .collect();
    let mut selected = Vec::new();
    for d in &e002 {
        let Provenance::Package {
            package,
            directive: Some(text),
            span: Some(span),
        } = &d.provenance
        else {
            panic!("{label}: E002 without package/directive/span: {d:?}");
        };
        assert_eq!(package, "explain-demo", "{label}");
        assert!(
            span.start < span.end && span.end <= text.len(),
            "{label}: span {span:?} must index into {text:?}"
        );
        selected.push(text[span.start..span.end].to_string());
    }
    selected.sort();
    assert_eq!(
        selected,
        ["@1.2", "@1.3"],
        "{label}: spans must select exactly the clashing version tokens"
    );
    assert!(
        report.diagnostics.iter().any(|d| d.code == Code::E001),
        "{label}: summary diagnostic missing"
    );
    assert!(
        report.diagnostics.iter().any(|d| d.code == Code::E003),
        "{label}: the goal itself must be cited"
    );
}

/// Add `version` to `package`, spackled-update style: upsert the
/// mutated definition, diff, and apply the delta to the warm cache.
fn apply_update(repo: &mut Repository, gc: &GroundCache, package: &str, version: &str) {
    let name = Sym::intern(package);
    let mut def = repo.get(name).expect("fixture package").clone();
    def.versions.push(Version::parse(version).unwrap());
    let mut post = repo.clone();
    post.upsert(def);
    let delta = repo_delta(repo, &post);
    assert!(!delta.is_empty());
    gc.apply_delta(&delta);
    *repo = post;
}

#[test]
fn explain_spans_survive_closure_and_unrelated_deltas() {
    let mut repo = with_mpiabi(&radiuss_repo());
    let gc = GroundCache::shared();

    // Pre-delta baseline, with the cache warm on the satisfiable
    // default configuration (~newzlib) and an unrelated package.
    Concretizer::new(&repo)
        .with_ground_cache(gc.clone())
        .concretize(&parse_spec("explain-demo").unwrap())
        .unwrap();
    Concretizer::new(&repo)
        .with_ground_cache(gc.clone())
        .concretize(&parse_spec("lz4").unwrap())
        .unwrap();
    assert_explains(&repo, "pre-delta");

    // Delta 1: mutate a package *outside* the fixture's closure. The
    // fixture's entries are retained — and must still explain.
    apply_update(&mut repo, &gc, "bzip2", "1.0.9");
    let sol = Concretizer::new(&repo)
        .with_ground_cache(gc.clone())
        .concretize(&parse_spec("explain-demo").unwrap())
        .unwrap();
    assert!(
        sol.stats.ground_cache_hit,
        "unrelated delta must retain the fixture's entry"
    );
    assert_explains(&repo, "post-unrelated-delta");

    // Delta 2: mutate zlib — *inside* the fixture's closure. The pins
    // are on majors 1.2/1.3, so adding 1.2.14 keeps the conflict; the
    // re-grounded program must map spans against the mutated universe.
    apply_update(&mut repo, &gc, "zlib", "1.2.14");
    let sol = Concretizer::new(&repo)
        .with_ground_cache(gc.clone())
        .concretize(&parse_spec("explain-demo").unwrap())
        .unwrap();
    assert!(
        !sol.stats.ground_cache_hit,
        "closure delta must re-ground the fixture's entry"
    );
    assert_explains(&repo, "post-closure-delta");

    // Delta 3: mutate the fixture package itself (its own segment).
    apply_update(&mut repo, &gc, "explain-demo", "1.0.1");
    assert_explains(&repo, "post-self-delta");
}
