//! Metamorphic splice tests (paper §4.1, Fig 2 invariants).
//!
//! Rather than asserting exact outputs, these tests check relations
//! that must hold across *any* splice on randomly generated DAGs:
//!
//! * splicing then rehashing is a fixpoint — the hashes a splice
//!   assigns are exactly the hashes the DAG's structure implies;
//! * build-spec provenance points at the sub-DAG the binary was
//!   actually built as (target side) or the replacement spec itself;
//! * nodes whose dependency closure avoids the replaced package and
//!   everything the replacement carries are untouched — byte-identical
//!   hashes, no provenance — and therefore transitive and intransitive
//!   splices agree on them;
//! * splicing a spec's own sub-DAG back in is a no-op for both
//!   flavours.

use proptest::prelude::*;
use proptest::TestRng;
use spackle::prelude::*;
use spackle::spec::spec::ConcreteSpecBuilder;
use std::collections::BTreeSet;

fn v(s: &str) -> Version {
    Version::parse(s).unwrap()
}

fn edge_type(rng: &mut TestRng) -> DepTypes {
    match rng.below(10) {
        0 | 1 => DepTypes::BUILD,
        2 | 3 => DepTypes::ALL,
        _ => DepTypes::LINK_RUN,
    }
}

/// A random DAG over `pkg0..pkg{n-1}` with a guaranteed spine
/// `pkg_i -> pkg_{i+1}` (so every node is reachable and the graph is
/// acyclic) plus random skip edges, and the index of a non-root node
/// to splice out.
fn random_target(rng: &mut TestRng) -> (ConcreteSpec, usize) {
    let n = 3 + rng.below(4) as usize; // 3..=6 packages
    let mut b = ConcreteSpecBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            b.node(
                &format!("pkg{i}"),
                v(&format!("{}.{}", 1 + rng.below(3), rng.below(2))),
            )
        })
        .collect();
    for i in 0..n - 1 {
        b.edge(ids[i], ids[i + 1], edge_type(rng));
        for j in i + 2..n {
            if rng.below(100) < 30 {
                b.edge(ids[i], ids[j], edge_type(rng));
            }
        }
    }
    let spec = b.build(ids[0]).expect("spine DAG is valid");
    let x = 1 + rng.below((n - 1) as u64) as usize;
    (spec, x)
}

/// A replacement for `pkg{x}`: same name, new version, linking a random
/// subset of the target's deeper packages (shared names, possibly at
/// different versions) and sometimes a package the target never had.
fn random_replacement(rng: &mut TestRng, target_len: usize, x: usize) -> ConcreteSpec {
    let mut b = ConcreteSpecBuilder::new();
    let root = b.node(
        &format!("pkg{x}"),
        v(&format!("{}.9", 1 + rng.below(3))),
    );
    for j in x + 1..target_len {
        if rng.below(100) < 50 {
            let d = b.node(
                &format!("pkg{j}"),
                v(&format!("{}.{}", 1 + rng.below(3), rng.below(2))),
            );
            b.edge(root, d, DepTypes::LINK_RUN);
        }
    }
    if rng.below(100) < 40 {
        let d = b.node("libnew", v("0.1"));
        b.edge(root, d, DepTypes::LINK_RUN);
    }
    b.build(root).expect("flat replacement is valid")
}

fn names_of(spec: &ConcreteSpec) -> BTreeSet<Sym> {
    spec.nodes().iter().map(|n| n.name).collect()
}

fn check_case(seed: u64) {
    let mut rng = TestRng::seed_from_u64(seed);
    let (target, x) = random_target(&mut rng);
    let replacement = random_replacement(&mut rng, target.len(), x);
    let replaced = Sym::intern(&format!("pkg{x}"));

    // Target nodes whose full dependency closure (any edge type) avoids
    // the replaced package and every package the replacement carries:
    // the splice must not touch them.
    let repl_names = names_of(&replacement);
    let unaffected: Vec<Sym> = target
        .all_ids()
        .into_iter()
        .filter(|&id| {
            target
                .reachable(id, |_| true)
                .into_iter()
                .all(|r| !repl_names.contains(&target.node(r).name))
        })
        .map(|id| target.node(id).name)
        .collect();

    for transitive in [true, false] {
        let spliced = target
            .splice(&replacement, transitive)
            .unwrap_or_else(|e| panic!("seed {seed} (transitive={transitive}): {e}"));

        // Package accounting: the result draws only from the two inputs
        // and keeps the target's root. Packages may legitimately vanish
        // — even the replacement itself, when every edge to it was a
        // build edge of a spliced node (build deps of spliced nodes are
        // pruned) — but nothing may appear from thin air.
        let names = names_of(&spliced);
        let mut union = names_of(&target);
        union.extend(&repl_names);
        assert!(
            names.is_subset(&union),
            "seed {seed} (transitive={transitive}): package set {names:?}"
        );
        assert_eq!(spliced.root().name, target.root().name);

        // Hash fixpoint: rehashing must not move any node hash.
        let mut again = spliced.clone();
        again.rehash().expect("spliced DAG stays acyclic");
        for (a, b) in spliced.nodes().iter().zip(again.nodes()) {
            assert_eq!(
                a.hash, b.hash,
                "seed {seed} (transitive={transitive}): {} hash not a rehash fixpoint",
                a.name
            );
        }

        // Provenance: a spliced node's build spec is the sub-DAG its
        // binary was built as — the node's original sub-DAG hash on
        // whichever side it came from.
        for id in spliced.all_ids() {
            let n = spliced.node(id);
            let Some(bs) = &n.build_spec else { continue };
            let target_hash = target.find(n.name).map(|i| target.node(i).hash);
            let repl_hash = replacement.find(n.name).map(|i| replacement.node(i).hash);
            assert!(
                Some(bs.dag_hash()) == target_hash || Some(bs.dag_hash()) == repl_hash,
                "seed {seed} (transitive={transitive}): {} provenance matches neither side",
                n.name
            );
        }
        // When the replaced package is in the root's *runtime* (link-run)
        // closure, the relink must propagate all the way up: the root is
        // spliced and its provenance is the original target build. (A
        // replacement hidden behind build-only edges changes no binary
        // the root links against, so the root may legitimately stay
        // clean — changed build deps only alter hashes, not provenance.)
        let x_in_runtime = target
            .runtime_nodes()
            .into_iter()
            .any(|id| target.node(id).name == replaced);
        if x_in_runtime {
            assert_eq!(
                spliced
                    .root()
                    .build_spec
                    .as_ref()
                    .unwrap_or_else(|| panic!(
                        "seed {seed} (transitive={transitive}): replaced node is in the \
                         runtime closure but the root is not spliced"
                    ))
                    .dag_hash(),
                target.dag_hash(),
                "seed {seed} (transitive={transitive}): root provenance"
            );
        }

        // Untouched subtrees: identical hash, no provenance. (A node
        // can drop out entirely when its only paths from the root ran
        // through the spliced-out subtree or a pruned build edge; if it
        // survives, it must be byte-identical.)
        for &name in &unaffected {
            let orig = target.node(target.find(name).unwrap());
            let Some(now_id) = spliced.find(name) else {
                continue;
            };
            let now = spliced.node(now_id);
            assert_eq!(
                orig.hash, now.hash,
                "seed {seed} (transitive={transitive}): {name} was disturbed"
            );
            assert!(
                !now.is_spliced(),
                "seed {seed} (transitive={transitive}): {name} gained spurious provenance"
            );
        }

        // Splicing the target's own sub-DAG back in changes nothing.
        let own = target.subdag(target.find(replaced).unwrap());
        let noop = target
            .splice(&own, transitive)
            .unwrap_or_else(|e| panic!("seed {seed} (transitive={transitive}): self-splice {e}"));
        assert_eq!(
            noop.dag_hash(),
            target.dag_hash(),
            "seed {seed} (transitive={transitive}): self-splice must be a no-op"
        );
        assert!(
            noop.nodes().iter().all(|n| !n.is_spliced()),
            "seed {seed} (transitive={transitive}): self-splice created provenance"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn splice_invariants_on_random_dags(seed in 0u64..u64::MAX) {
        check_case(seed);
    }
}

/// Fig 2 deterministically: T(t→h→z, t→z) spliced with H'(h→s, h→z@1.1).
/// The two flavours disagree exactly on the shared package z — and agree
/// everywhere the replaced node is not in the dependency closure.
#[test]
fn fig2_transitive_vs_intransitive_disagree_only_on_shared_nodes() {
    let mut b = ConcreteSpecBuilder::new();
    let w = b.node("w", v("5.0")); // bystander: t→w, no path to h or z
    let z = b.node("z", v("1.0"));
    let h = b.node("h", v("1.0"));
    let t = b.node("t", v("1.0"));
    b.edge(h, z, DepTypes::LINK_RUN);
    b.edge(t, h, DepTypes::LINK_RUN);
    b.edge(t, z, DepTypes::LINK_RUN);
    b.edge(t, w, DepTypes::LINK_RUN);
    let target = b.build(t).unwrap();

    let mut b = ConcreteSpecBuilder::new();
    let z = b.node("z", v("1.1"));
    let s = b.node("s", v("1.0"));
    let h = b.node("h", v("2.0"));
    b.edge(h, s, DepTypes::LINK_RUN);
    b.edge(h, z, DepTypes::LINK_RUN);
    let hp = b.build(h).unwrap();

    let trans = target.splice(&hp, true).unwrap();
    let intrans = target.splice(&hp, false).unwrap();

    // Shared z: replacement's copy wins transitively, target's copy
    // survives intransitively (and forces h to be relinked → spliced).
    let zv = |s: &ConcreteSpec| s.node(s.find(Sym::intern("z")).unwrap()).version.clone();
    assert_eq!(zv(&trans), v("1.1"));
    assert_eq!(zv(&intrans), v("1.0"));
    let h_of = |s: &ConcreteSpec| s.node(s.find(Sym::intern("h")).unwrap()).clone();
    assert!(!h_of(&trans).is_spliced(), "transitive: h' is reused as built");
    assert_eq!(
        h_of(&intrans).build_spec.as_ref().unwrap().dag_hash(),
        hp.dag_hash(),
        "intransitive: h' is relinked, provenance = H' as built"
    );

    // The bystander w is untouched by both flavours — same node hash as
    // in the original, so the flavours also agree with each other.
    let wh = |s: &ConcreteSpec| s.node(s.find(Sym::intern("w")).unwrap()).hash;
    assert_eq!(wh(&trans), wh(&target));
    assert_eq!(wh(&intrans), wh(&target));

    // Both roots carry provenance for the original T build.
    assert_eq!(
        trans.root().build_spec.as_ref().unwrap().dag_hash(),
        target.dag_hash()
    );
    assert_eq!(
        intrans.root().build_spec.as_ref().unwrap().dag_hash(),
        target.dag_hash()
    );
}
