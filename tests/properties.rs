//! Cross-crate property tests: solutions satisfy their goals, caches
//! round-trip, splices preserve invariants, and relocation composes.

use proptest::prelude::*;
use spackle::prelude::*;
use spackle::spec::spec::ConcreteSpecBuilder;
use spackle::spec::VersionReq;

fn small_repo() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("zlib")
            .version("1.3")
            .version("1.2.13")
            .version("1.2.11")
            .variant_bool("pic", true)
            .build()
            .unwrap(),
        PackageBuilder::new("bzip2").version("1.0.8").build().unwrap(),
        PackageBuilder::new("lib-a")
            .version("2.1")
            .version("2.0")
            .variant_bool("extra", false)
            .depends_on("zlib")
            .depends_on_when("bzip2", "+extra")
            .build()
            .unwrap(),
        PackageBuilder::new("app")
            .version("1.0")
            .depends_on("lib-a")
            .depends_on("zlib")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

/// Strategy: goal strings with varying constraints that are satisfiable
/// (or not — both are valid outcomes; the property is that SAT solutions
/// really satisfy the goal).
fn goal_strategy() -> impl Strategy<Value = String> {
    let roots = prop_oneof![Just("app"), Just("lib-a"), Just("zlib")];
    let vers = prop_oneof![
        Just(""),
        Just("@1.3"),
        Just("@1.2"),
        Just("@2.0"),
        Just("@9.9")
    ];
    let variant = prop_oneof![Just(""), Just("+extra"), Just("~extra"), Just("+pic")];
    let dep = prop_oneof![Just(""), Just(" ^zlib@1.2"), Just(" ^zlib@1.3")];
    (roots, vers, variant, dep).prop_map(|(r, v, var, d)| {
        // Variants only valid on matching packages; keep variant clauses
        // for lib-a / zlib only when they declare them.
        let var = match (r, var) {
            ("lib-a", x @ ("+extra" | "~extra")) => x,
            ("zlib", "+pic") => "+pic",
            _ => "",
        };
        format!("{r}{v}{var}{d}")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solutions_satisfy_goals(goal in goal_strategy()) {
        let repo = small_repo();
        let abstract_spec = parse_spec(&goal).unwrap();
        match Concretizer::new(&repo).concretize(&abstract_spec) {
            Ok(sol) => {
                // The concrete spec satisfies the abstract constraint.
                prop_assert!(
                    sol.spec().satisfies(&abstract_spec),
                    "{} does not satisfy {goal}",
                    sol.spec()
                );
                // Rebuilding the hash from scratch is stable.
                let mut clone = sol.spec().clone();
                clone.rehash().unwrap();
                prop_assert_eq!(clone.dag_hash(), sol.spec().dag_hash());
            }
            Err(CoreError::Unsatisfiable) => { /* legitimately UNSAT */ }
            Err(e) => return Err(TestCaseError::fail(format!("{goal}: {e}"))),
        }
    }

    #[test]
    fn cache_json_roundtrip_preserves_lookup(seedless in 0u8..4) {
        let repo = small_repo();
        let goals = ["app", "lib-a", "zlib", "app ^zlib@1.2"];
        let sol = Concretizer::new(&repo)
            .concretize(&parse_spec(goals[seedless as usize]).unwrap())
            .unwrap();
        let mut cache = BuildCache::new();
        cache.add_spec(sol.spec());
        let back = BuildCache::from_json(&cache.to_json()).unwrap();
        prop_assert_eq!(back.len(), cache.len());
        prop_assert!(back.get(sol.spec().dag_hash()).is_some());
    }

    #[test]
    fn splice_preserves_unrelated_nodes(zv in prop_oneof![Just("1.2.11"), Just("1.2.13")]) {
        let repo = small_repo();
        let sol = Concretizer::new(&repo)
            .concretize(&parse_spec("app ^zlib@1.3").unwrap())
            .unwrap();
        let mut zb = ConcreteSpecBuilder::new();
        let z = zb.node("zlib", Version::parse(zv).unwrap());
        let newz = zb.build(z).unwrap();
        let spliced = sol.spec().splice(&newz, true).unwrap();

        // Node count unchanged (same package set).
        prop_assert_eq!(spliced.len(), sol.spec().len());
        // The new zlib version took effect.
        let zn = spliced.node(spliced.find(Sym::intern("zlib")).unwrap());
        prop_assert_eq!(zn.version.to_string(), zv);
        // Everything that depends on zlib is spliced, bzip2-free leaves
        // are not.
        let app = spliced.node(spliced.find(Sym::intern("app")).unwrap());
        prop_assert!(app.is_spliced());
        prop_assert!(!zn.is_spliced());
        // Double application is deterministic.
        let again = sol.spec().splice(&newz, true).unwrap();
        prop_assert_eq!(again.dag_hash(), spliced.dag_hash());
    }

    #[test]
    fn version_req_roundtrip_and_satisfaction(
        major in 1u64..5, minor in 0u64..20, kind in 0u8..4
    ) {
        let v = Version::parse(&format!("{major}.{minor}")).unwrap();
        let req = match kind {
            0 => VersionReq::parse(&format!("{major}")).unwrap(),
            1 => VersionReq::parse(&format!("{major}.{minor}")).unwrap(),
            2 => VersionReq::parse(&format!("{major}:")).unwrap(),
            _ => VersionReq::parse(&format!(":{major}.{minor}")).unwrap(),
        };
        prop_assert!(req.satisfies(&v));
        // Display round-trip.
        let printed = req.to_string();
        let reparsed = VersionReq::parse(&printed[1..]).unwrap();
        prop_assert_eq!(reparsed, req);
    }
}

#[test]
fn relocation_composes_with_reinstall() {
    // Install the same cached stack under three different roots in
    // sequence; each verify must pass (relocation is root-independent).
    let repo = small_repo();
    let sol = Concretizer::new(&repo)
        .concretize(&parse_spec("app").unwrap())
        .unwrap();
    let farm = Installer::new(InstallLayout::new("/farm"));
    let mut cache = BuildCache::new();
    cache.add_spec_with(sol.spec(), |s| farm.build_artifact(s, s.root_id()));

    for root in ["/a", "/deeply/nested/install/root", "/opt/x"] {
        let mut inst = Installer::new(InstallLayout::new(root));
        let plan = InstallPlan::plan(sol.spec(), &cache);
        assert_eq!(plan.builds(), 0);
        inst.install(sol.spec(), &cache, &plan).unwrap();
        let problems = inst.verify(sol.spec());
        assert!(problems.is_empty(), "root {root}: {problems:?}");
    }
}
