//! Environments end-to-end: joint concretization to a lockfile,
//! lockfile serialization, reuse-aware re-concretization, and a spliced
//! deployment of a whole environment.

use spackle::environment::Environment;
use spackle::prelude::*;

fn repo_with_mock() -> Repository {
    Repository::from_packages([
        PackageBuilder::new("mpich")
            .version("3.4.3")
            .provides("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("cray-mpich")
            .version("8.1.25")
            .provides("mpi")
            .can_splice("mpich@3.4.3", "")
            .build()
            .unwrap(),
        PackageBuilder::new("openblas").version("0.3.23").build().unwrap(),
        PackageBuilder::new("hypre")
            .version("2.29.0")
            .depends_on("openblas")
            .depends_on("mpi")
            .build()
            .unwrap(),
        PackageBuilder::new("mfem")
            .version("4.5.2")
            .depends_on("hypre")
            .depends_on("mpi")
            .build()
            .unwrap(),
    ])
    .unwrap()
}

#[test]
fn environment_lock_then_reuse() {
    let repo = repo_with_mock();
    let mut env = Environment::new();
    env.add("hypre ^mpich").unwrap();
    env.add("mfem ^mpich").unwrap();
    env.concretize(&repo, &[], ConcretizerConfig::splice_spack_disabled())
        .unwrap();

    // Install and cache the whole environment.
    let mut farm = Installer::new(InstallLayout::new("/farm"));
    env.install(&mut farm, &BuildCache::new()).unwrap();
    let mut cache = BuildCache::new();
    for (_, h) in &env.lock.as_ref().unwrap().roots {
        let spec = &env.lock.as_ref().unwrap().specs[h];
        cache.add_spec_with(spec, |s| farm.build_artifact(s, s.root_id()));
    }

    // Round-trip through JSON, then re-concretize against the cache:
    // zero builds.
    let mut env2 = Environment::from_json(&env.to_json()).unwrap();
    env2.concretize(&repo, &[std::sync::Arc::new(cache.clone()) as std::sync::Arc<dyn CacheSource>], ConcretizerConfig::splice_spack_disabled())
        .unwrap();
    let mut local = Installer::new(InstallLayout::new("/home/user/.spackle"));
    let report = env2.install(&mut local, &cache).unwrap();
    assert_eq!(report.built, 0, "fully reused environment");
    assert!(report.reused > 0);
    assert!(env2.verify(&local).unwrap().is_empty());
}

#[test]
fn environment_deploys_spliced_on_cray() {
    let repo = repo_with_mock();

    // Farm: build the mpich-based environment and publish binaries.
    let mut env = Environment::new();
    env.add("hypre ^mpich").unwrap();
    env.add("mfem ^mpich").unwrap();
    env.concretize(&repo, &[], ConcretizerConfig::splice_spack_disabled())
        .unwrap();
    let mut farm = Installer::new(InstallLayout::new("/farm"));
    env.install(&mut farm, &BuildCache::new()).unwrap();
    let mut cache = BuildCache::new();
    for (_, h) in &env.lock.as_ref().unwrap().roots {
        let spec = &env.lock.as_ref().unwrap().specs[h];
        cache.add_spec_with(spec, |s| farm.build_artifact(s, s.root_id()));
    }

    // Cluster: same roots, but with cray-mpich.
    let mut cluster_env = Environment::new();
    cluster_env.add("hypre ^cray-mpich").unwrap();
    cluster_env.add("mfem ^cray-mpich").unwrap();
    let lock = cluster_env
        .concretize(&repo, &[std::sync::Arc::new(cache.clone()) as std::sync::Arc<dyn CacheSource>], ConcretizerConfig::splice_spack())
        .unwrap();

    // Both roots share one cray-mpich, and their parents are spliced
    // (carry provenance) rather than rebuilt.
    let hypre = lock.spec_for("hypre ^cray-mpich").unwrap();
    let mfem = lock.spec_for("mfem ^cray-mpich").unwrap();
    assert!(hypre.find(Sym::intern("mpich")).is_none());
    assert!(hypre.root().is_spliced());
    assert!(mfem.root().is_spliced());

    // Install the environment: only cray-mpich builds; everything else
    // reuses or rewires; verification passes.
    let mut cluster = Installer::new(InstallLayout::new("/lustre/sw"));
    let report = cluster_env.install(&mut cluster, &cache).unwrap();
    assert_eq!(report.built, 1, "only cray-mpich compiles: {report:?}");
    assert!(report.rewired >= 2, "hypre and mfem rewired: {report:?}");
    assert!(cluster_env.verify(&cluster).unwrap().is_empty());
}
