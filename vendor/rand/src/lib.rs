//! Minimal vendored `rand` API: the subset this workspace uses —
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`Rng::gen_bool`] — backed by xoshiro256** seeded
//! via SplitMix64 (both public-domain algorithms).
//!
//! Determinism contract: for a fixed seed the generated sequence is
//! stable across runs and platforms (everything is u64 arithmetic), so
//! seeded experiment pipelines stay reproducible. The streams differ
//! from crates.io `rand`'s `StdRng` (which is a ChaCha cipher); nothing
//! in this workspace depends on the specific stream, only on stability.

use std::ops::Range;

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`. Panics on an empty range, like the
    /// real crate.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Widening-multiply uniform map (Lemire); the bias over a
                // u64 space is negligible for the small spans used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Namespace matching `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seedable generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v] = true;
        }
        assert!(seen[3..10].iter().all(|&s| s), "all values reachable");
        for _ in 0..100 {
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn reference_works_as_rng() {
        fn takes_impl(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..5usize)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_impl(&mut rng);
        let _ = takes_impl(&mut &mut rng);
    }
}
