//! Minimal vendored `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the item shapes this workspace uses —
//! named structs (with optional `#[serde(default)]` fields), tuple
//! structs, unit structs, and enums with unit / newtype / tuple
//! variants, all without generics. Parsing is done directly on
//! `proc_macro::TokenStream` (no syn/quote); generated code calls
//! inference-friendly helpers in `serde::__private` so field types
//! never need to be understood, only field names and arities.
//!
//! The representation matches real serde's defaults: structs as JSON
//! objects, newtype structs transparent, tuples as arrays, enums
//! externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    arity: usize,
    unit: bool,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

type Iter = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip one attribute if the iterator is at `#`; return the bracket
/// group's tokens so callers can inspect `#[serde(...)]`.
fn take_attr(iter: &mut Iter) -> Option<TokenStream> {
    match iter.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            iter.next();
            match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    Some(g.stream())
                }
                other => panic!("serde_derive: expected [...] after `#`, found {other:?}"),
            }
        }
        _ => None,
    }
}

/// Does this attribute body read `serde(default)`? Any other
/// `serde(...)` content is rejected loudly rather than silently
/// mis-serialized.
fn attr_is_serde_default(attr: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            let inner: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
            if inner == ["default"] {
                true
            } else {
                panic!(
                    "serde_derive: unsupported #[serde({})] — this vendored derive only \
                     implements #[serde(default)]",
                    inner.join("")
                );
            }
        }
        _ => false,
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(iter: &mut Iter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter: Iter = input.into_iter().peekable();
    // Skip outer attributes / visibility until the item keyword.
    let is_enum = loop {
        if take_attr(&mut iter).is_some() {
            continue;
        }
        match iter.next() {
            Some(TokenTree::Ident(i)) if i.to_string() == "struct" => break false,
            Some(TokenTree::Ident(i)) if i.to_string() == "enum" => break true,
            Some(_) => continue,
            None => panic!("serde_derive: no `struct` or `enum` found in derive input"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by this vendored derive");
    }
    if is_enum {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: expected struct body, found {other:?}"),
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut iter: Iter = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut default = false;
        while let Some(attr) = take_attr(&mut iter) {
            default |= attr_is_serde_default(&attr);
        }
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-depth 0.
        // Grouped tokens (parens/brackets/braces) arrive as single
        // trees, so only `<`/`>` depth needs tracking.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut pending = false; // tokens seen since the last top-level comma
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += usize::from(pending);
                pending = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                pending = true;
            }
            _ => pending = true,
        }
    }
    arity + usize::from(pending)
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut iter: Iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while take_attr(&mut iter).is_some() {}
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let variant = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                Variant { name, arity, unit: false }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!(
                    "serde_derive: struct variant `{name}` is not supported by this vendored derive"
                );
            }
            _ => Variant { name, arity: 0, unit: true },
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported (variant `{}`)", variant.name);
        }
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(variant);
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    let name = item_name(item);
    let _ = write!(
        out,
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n"
    );
    match item {
        Item::NamedStruct { fields, .. } => {
            let _ = writeln!(
                out,
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::with_capacity({});",
                fields.len()
            );
            for f in fields {
                let json = json_name(&f.name);
                let _ = writeln!(
                    out,
                    "__obj.push((::std::string::String::from(\"{json}\"), \
                     ::serde::__private::ser_field::<_, __S::Error>(&self.{})?));",
                    f.name
                );
            }
            out.push_str("__serializer.serialize_value(::serde::Value::Object(__obj))\n");
        }
        Item::TupleStruct { arity: 1, .. } => {
            out.push_str(
                "__serializer.serialize_value(\
                 ::serde::__private::ser_field::<_, __S::Error>(&self.0)?)\n",
            );
        }
        Item::TupleStruct { arity, .. } => {
            let _ = writeln!(
                out,
                "let mut __arr: ::std::vec::Vec<::serde::Value> = \
                 ::std::vec::Vec::with_capacity({arity});"
            );
            for i in 0..*arity {
                let _ = writeln!(
                    out,
                    "__arr.push(::serde::__private::ser_field::<_, __S::Error>(&self.{i})?);"
                );
            }
            out.push_str("__serializer.serialize_value(::serde::Value::Array(__arr))\n");
        }
        Item::UnitStruct { .. } => {
            out.push_str("__serializer.serialize_value(::serde::Value::Null)\n");
        }
        Item::Enum { name, variants } => {
            out.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                if v.unit {
                    let _ = writeln!(
                        out,
                        "{name}::{vname} => __serializer.serialize_value(\
                         ::serde::Value::String(::std::string::String::from(\"{vname}\"))),"
                    );
                } else if v.arity == 1 {
                    let _ = writeln!(
                        out,
                        "{name}::{vname}(__f0) => {{\n\
                         let __payload = ::serde::__private::ser_field::<_, __S::Error>(__f0)?;\n\
                         __serializer.serialize_value(::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), __payload)]))\n}}"
                    );
                } else {
                    let binders: Vec<String> = (0..v.arity).map(|i| format!("__f{i}")).collect();
                    let _ = writeln!(out, "{name}::{vname}({}) => {{", binders.join(", "));
                    let _ = writeln!(
                        out,
                        "let mut __arr: ::std::vec::Vec<::serde::Value> = \
                         ::std::vec::Vec::with_capacity({});",
                        v.arity
                    );
                    for b in &binders {
                        let _ = writeln!(
                            out,
                            "__arr.push(::serde::__private::ser_field::<_, __S::Error>({b})?);"
                        );
                    }
                    let _ = writeln!(
                        out,
                        "__serializer.serialize_value(::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vname}\"), \
                         ::serde::Value::Array(__arr))]))\n}}"
                    );
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    let name = item_name(item);
    let _ = write!(
        out,
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::std::result::Result<Self, __D::Error> {{\n\
         let __value = ::serde::Deserializer::take_value(__deserializer)?;\n"
    );
    match item {
        Item::NamedStruct { name, fields } => {
            let _ = writeln!(
                out,
                "let mut __obj = ::serde::__private::into_object::<__D::Error>(__value, \"{name}\")?;"
            );
            let _ = writeln!(out, "::std::result::Result::Ok({name} {{");
            for f in fields {
                let helper = if f.default { "de_field_default" } else { "de_field" };
                let json = json_name(&f.name);
                let _ = writeln!(
                    out,
                    "{}: ::serde::__private::{helper}(&mut __obj, \"{json}\")?,",
                    f.name
                );
            }
            out.push_str("})\n");
        }
        Item::TupleStruct { name, arity: 1 } => {
            let _ = writeln!(
                out,
                "::std::result::Result::Ok({name}(::serde::__private::de_value(__value)?))"
            );
        }
        Item::TupleStruct { name, arity } => {
            out.push_str(&gen_array_unpack("__value", name, *arity));
            let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let _ = writeln!(out, "::std::result::Result::Ok({name}({}))", binders.join(", "));
        }
        Item::UnitStruct { name } => {
            let _ = writeln!(
                out,
                "match __value {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __v => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"invalid type: found {{}}, expected unit struct {name}\", __v.kind()))),\n\
                 }}"
            );
        }
        Item::Enum { name, variants } => {
            out.push_str("match __value {\n");
            // Unit variants arrive as plain strings.
            out.push_str("::serde::Value::String(__name) => match __name.as_str() {\n");
            for v in variants.iter().filter(|v| v.unit) {
                let _ = writeln!(out, "\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name);
            }
            let _ = writeln!(
                out,
                "__other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{{}}` of enum {name}\", __other))),\n}},"
            );
            // Payload variants arrive as single-key objects.
            out.push_str(
                "::serde::Value::Object(mut __pairs) if __pairs.len() == 1 => {\n\
                 let (__name, __payload) = __pairs.pop().expect(\"length checked\");\n\
                 match __name.as_str() {\n",
            );
            for v in variants.iter().filter(|v| !v.unit) {
                let vname = &v.name;
                if v.arity == 1 {
                    let _ = writeln!(
                        out,
                        "\"{vname}\" => ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::__private::de_value(__payload)?)),"
                    );
                } else {
                    let _ = writeln!(out, "\"{vname}\" => {{");
                    out.push_str(&gen_array_unpack("__payload", &format!("{name}::{vname}"), v.arity));
                    let binders: Vec<String> = (0..v.arity).map(|i| format!("__f{i}")).collect();
                    let _ = writeln!(
                        out,
                        "::std::result::Result::Ok({name}::{vname}({}))\n}}",
                        binders.join(", ")
                    );
                }
            }
            let _ = writeln!(
                out,
                "__other => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"unknown variant `{{}}` of enum {name}\", __other))),\n}}\n}},"
            );
            let _ = writeln!(
                out,
                "__v => ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"invalid type: found {{}}, expected enum {name}\", __v.kind()))),\n}}"
            );
        }
    }
    out.push_str("}\n}\n");
    out
}

/// Emit statements binding `__f0..__fN` out of `source` (a `Value`
/// expected to be an array of length `arity`).
fn gen_array_unpack(source: &str, type_label: &str, arity: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "let mut __arr = ::serde::__private::into_array::<__D::Error>({source}, {arity}, \
         \"{type_label}\")?;"
    );
    // Pop from the back so each extraction is O(1).
    for i in (0..arity).rev() {
        let _ = writeln!(
            out,
            "let __f{i} = ::serde::__private::de_value(__arr.pop().expect(\"length checked\"))?;"
        );
    }
    out
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}

/// JSON key for a field: raw identifiers drop the `r#` prefix.
fn json_name(field: &str) -> &str {
    field.strip_prefix("r#").unwrap_or(field)
}
