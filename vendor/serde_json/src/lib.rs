//! Minimal vendored `serde_json`: [`to_string`], [`to_string_pretty`],
//! and [`from_str`] over the vendored `serde` [`Value`] data model.
//!
//! The parser is a recursive-descent JSON reader that reports
//! [`Error`]s (never panics) on malformed input: trailing garbage,
//! truncation, bad escapes, non-finite numbers, and pathological
//! nesting (bounded depth) are all rejected cleanly, which the
//! workspace's corrupt-cache tests rely on.

use serde::{de, from_value, ser, to_value, DeserializeOwned, Serialize, Value};
use std::fmt;

/// Error raised by JSON serialization or parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    render(&v, None, 0, &mut out)?;
    Ok(out)
}

/// Serialize `value` to JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    render(&v, Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    from_value(value).map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if !n.is_finite() {
                return Err(Error::new("cannot serialize a non-finite float as JSON"));
            }
            out.push_str(&n.to_string());
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{lit}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy a plain run without per-char pushes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so any escape-free run that ends
                // on an ASCII boundary byte is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 inside string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => {
                    return Err(Error::new(format!(
                        "control character in string at byte {}",
                        self.pos
                    )))
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<()> {
        let b = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b't' => out.push('\t'),
            b'r' => out.push('\r'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    self.expect_literal("\\u")
                        .map_err(|_| Error::new("unpaired surrogate in \\u escape"))?;
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(Error::new("invalid low surrogate in \\u escape"));
                    }
                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    char::from_u32(code)
                } else {
                    char::from_u32(hi)
                };
                out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
            }
            _ => return Err(Error::new(format!("invalid escape `\\{}`", b as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| Error::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        let n: f64 = text
            .parse()
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))?;
        if !n.is_finite() {
            return Err(Error::new(format!("non-finite number `{text}`")));
        }
        Ok(Value::F64(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string("hi \"there\"\n").unwrap(), r#""hi \"there\"\n""#);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<String>(r#""a\u0041\n""#).unwrap(), "aA\n");
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "😀");
    }

    #[test]
    fn collections_round_trip() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2]);
        m.insert("b".into(), vec![]);
        let compact = to_string(&m).unwrap();
        assert_eq!(compact, r#"{"a":[1,2],"b":[]}"#);
        let back: BTreeMap<String, Vec<u32>> = from_str(&compact).unwrap();
        assert_eq!(back, m);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains("\n  \"a\": ["));
        let back: BTreeMap<String, Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "nul", "\"abc", "\"\\q\"",
            "\"\\u12\"", "\"\\ud800\"", "1e999", "[1] trailing", "{\"a\":1,}", "[,]",
            "\u{7f}", "--1", "\"\u{1}\"",
        ] {
            assert!(from_str::<serde::Value>(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(60_000);
        assert!(from_str::<serde::Value>(&deep).is_err());
    }

    #[test]
    fn option_and_null() {
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&Some(3u32)).unwrap(), "3");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }
}
