//! Minimal vendored `proptest`-compatible property-testing harness.
//!
//! Implements the subset of the real crate this workspace uses:
//! [`Strategy`] with `prop_map`/`boxed`, [`Just`], ranges and regex-like
//! string literals as strategies, tuples up to six strategies,
//! `prop::collection::vec`, `prop::sample::select`,
//! `prop::array::uniform32`, `prop::option::of`, `prop::bool::ANY`,
//! [`any`], the [`proptest!`]/[`prop_oneof!`]/`prop_assert*` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: no shrinking (a failing case
//! reports its case index and seed instead; rerun with the
//! `PROPTEST_SEED` environment variable to reproduce), and value
//! generation is a single random sample rather than a search tree.

use std::ops::{Range, RangeFrom};
use std::rc::Rc;

mod regex_gen;
mod rng;

pub use rng::TestRng;

/// How a property is generated and checked.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (clonable, for [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Clone, F: Clone> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map { inner: self.inner.clone(), f: self.f.clone() }
    }
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A clonable type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice between several strategies ([`prop_oneof!`]).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges and scalars as strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128 + 1) as u64;
                // span == 0 means the range covers the full 64-bit
                // domain; take raw bits.
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Regex-like string literals are strategies producing matching strings.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArbPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for ArbPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = ArbPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                ArbPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for ArbPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = ArbPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        ArbPrimitive(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------
// prop:: namespace
// ---------------------------------------------------------------------

/// Namespace mirroring `proptest::prop`/module re-exports used via
/// `prop::...` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        /// The result of [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Strategies drawing from explicit value lists.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly select one of `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over an empty list");
            Select(options)
        }

        /// The result of [`select`].
        #[derive(Clone)]
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.0.len() as u64) as usize;
                self.0[i].clone()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// 32 independent draws from `element`.
        pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
            Uniform32(element)
        }

        /// The result of [`uniform32`].
        #[derive(Clone)]
        pub struct Uniform32<S>(S);

        impl<S: Strategy> Strategy for Uniform32<S> {
            type Value = [S::Value; 32];
            fn sample(&self, rng: &mut TestRng) -> [S::Value; 32] {
                std::array::from_fn(|_| self.0.sample(rng))
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `Some` half the time, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        /// The result of [`of`].
        #[derive(Clone)]
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.0.sample(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Either boolean, uniformly.
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        /// The full boolean domain.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// An explicit property failure (`return Err(TestCaseError::fail(..))`).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

#[doc(hidden)]
pub fn __run_cases<F>(config: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // A fresh seed per run (reproducible via PROPTEST_SEED), mixed with
    // the test name so sibling tests explore different streams.
    let base = match std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok()) {
        Some(seed) => seed,
        None => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15),
    };
    let name_tag: u64 = test_name.bytes().fold(0xcbf29ce484222325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    for i in 0..config.cases {
        let seed = base ^ name_tag.wrapping_add(i as u64);
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng)
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(fail)) => {
                panic!(
                    "proptest: {test_name} failed at case {}/{}: {fail} \
                     (rerun with PROPTEST_SEED={base})",
                    i + 1,
                    config.cases
                );
            }
            Err(payload) => {
                eprintln!(
                    "proptest: {test_name} failed at case {}/{} (rerun with PROPTEST_SEED={base})",
                    i + 1,
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Define property tests: each argument is drawn from its strategy for
/// every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::__run_cases(__cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert within a property (plain `assert!`; the runner reports the
/// failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Pick {
        Low,
        High,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in -5i64..5, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn regex_strings_match_shape(
            name in "[a-z][a-z0-9]{0,6}(-[a-z0-9]{1,4})?",
            printable in "[ -~]{0,40}",
            path in "/[a-z/]{1,30}",
        ) {
            prop_assert!(!name.is_empty() && name.len() <= 12, "{name:?}");
            prop_assert!(name.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(printable.len() <= 40);
            prop_assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!(path.starts_with('/') && path.len() <= 31);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..5, prop::bool::ANY), 1..4),
            o in prop::option::of(1u64..3),
            pick in prop_oneof![Just(Pick::Low), Just(Pick::High)],
            chosen in prop::sample::select(vec!["a", "b"]),
            bytes in prop::array::uniform32(0u8..),
            byte in any::<u8>(),
        ) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|(n, _)| *n < 5));
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x));
            }
            prop_assert!(matches!(pick, Pick::Low | Pick::High));
            prop_assert!(chosen == "a" || chosen == "b");
            prop_assert_eq!(bytes.len(), 32);
            let _ = byte;
        }
    }

    #[test]
    fn seeded_runs_reproduce() {
        let mut a = crate::TestRng::seed_from_u64(9);
        let mut b = crate::TestRng::seed_from_u64(9);
        let s = "[A-Za-z_][A-Za-z0-9_]{0,10}";
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
