//! Tiny regex-shaped string generator backing `&'static str`
//! strategies. Supports the constructs the workspace's patterns use:
//! literal characters, character classes with ranges (`[A-Za-z_=]`,
//! `[ -~]`), groups `(...)`, and the quantifiers `{m}`, `{m,n}`, `?`,
//! `*`, `+` (the unbounded ones capped at 8 repeats). Pattern errors
//! panic: patterns are compile-time test fixtures, not runtime input.

use crate::rng::TestRng;

#[derive(Debug)]
enum Node {
    Literal(char),
    /// Flattened class membership.
    Class(Vec<char>),
    Group(Vec<(Node, Repeat)>),
}

#[derive(Debug)]
struct Repeat {
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_sequence(&chars, &mut pos, pattern);
    assert!(
        pos == chars.len(),
        "proptest regex_gen: unexpected `{}` at offset {pos} in {pattern:?}",
        chars[pos]
    );
    let mut out = String::new();
    emit_sequence(&seq, rng, &mut out);
    out
}

fn parse_sequence(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<(Node, Repeat)> {
    let mut seq = Vec::new();
    while *pos < chars.len() && chars[*pos] != ')' {
        let node = parse_atom(chars, pos, pattern);
        let repeat = parse_repeat(chars, pos, pattern);
        seq.push((node, repeat));
    }
    seq
}

fn parse_atom(chars: &[char], pos: &mut usize, pattern: &str) -> Node {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            let mut members = Vec::new();
            assert!(
                chars.get(*pos) != Some(&'^'),
                "proptest regex_gen: negated classes unsupported in {pattern:?}"
            );
            while *pos < chars.len() && chars[*pos] != ']' {
                let c = chars[*pos];
                // `a-z` range (a trailing `-` is a literal).
                if chars.get(*pos + 1) == Some(&'-')
                    && chars.get(*pos + 2).is_some_and(|&e| e != ']')
                {
                    let end = chars[*pos + 2];
                    assert!(c <= end, "proptest regex_gen: bad range {c}-{end} in {pattern:?}");
                    members.extend(c..=end);
                    *pos += 3;
                } else {
                    members.push(c);
                    *pos += 1;
                }
            }
            assert!(
                *pos < chars.len(),
                "proptest regex_gen: unterminated class in {pattern:?}"
            );
            *pos += 1; // closing ]
            assert!(!members.is_empty(), "proptest regex_gen: empty class in {pattern:?}");
            Node::Class(members)
        }
        '(' => {
            *pos += 1;
            let inner = parse_sequence(chars, pos, pattern);
            assert!(
                chars.get(*pos) == Some(&')'),
                "proptest regex_gen: unterminated group in {pattern:?}"
            );
            *pos += 1;
            Node::Group(inner)
        }
        '\\' => {
            *pos += 1;
            let c = *chars
                .get(*pos)
                .unwrap_or_else(|| panic!("proptest regex_gen: trailing \\ in {pattern:?}"));
            *pos += 1;
            Node::Literal(c)
        }
        c @ (']' | '{' | '}' | '?' | '*' | '+' | '|') => {
            panic!("proptest regex_gen: unsupported `{c}` at offset {pos} in {pattern:?}")
        }
        c => {
            *pos += 1;
            Node::Literal(c)
        }
    }
}

fn parse_repeat(chars: &[char], pos: &mut usize, pattern: &str) -> Repeat {
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let min = parse_number(chars, pos, pattern);
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    parse_number(chars, pos, pattern)
                }
                _ => min,
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "proptest regex_gen: unterminated quantifier in {pattern:?}"
            );
            *pos += 1;
            assert!(min <= max, "proptest regex_gen: bad quantifier in {pattern:?}");
            Repeat { min, max }
        }
        Some('?') => {
            *pos += 1;
            Repeat { min: 0, max: 1 }
        }
        Some('*') => {
            *pos += 1;
            Repeat { min: 0, max: 8 }
        }
        Some('+') => {
            *pos += 1;
            Repeat { min: 1, max: 8 }
        }
        _ => Repeat { min: 1, max: 1 },
    }
}

fn parse_number(chars: &[char], pos: &mut usize, pattern: &str) -> usize {
    let start = *pos;
    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    assert!(*pos > start, "proptest regex_gen: expected a number in {pattern:?}");
    chars[start..*pos].iter().collect::<String>().parse().expect("digits parse")
}

fn emit_sequence(seq: &[(Node, Repeat)], rng: &mut TestRng, out: &mut String) {
    for (node, repeat) in seq {
        let n = repeat.min + rng.below((repeat.max - repeat.min + 1) as u64) as usize;
        for _ in 0..n {
            match node {
                Node::Literal(c) => out.push(*c),
                Node::Class(members) => {
                    out.push(members[rng.below(members.len() as u64) as usize]);
                }
                Node::Group(inner) => emit_sequence(inner, rng, out),
            }
        }
    }
}
