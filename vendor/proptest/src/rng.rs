//! The harness RNG: xoshiro256** seeded via SplitMix64 (both
//! public-domain algorithms). Self-contained so the crate has no
//! dependencies.

/// Deterministic test RNG.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Expand a 64-bit seed into full generator state.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero). Uses the
    /// widening-multiply map; bias is negligible at test scales.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
