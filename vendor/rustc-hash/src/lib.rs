//! Minimal vendored implementation of the `rustc-hash` crate: the Fx
//! hash function behind `HashMap`/`HashSet` aliases. API-compatible with
//! the subset this workspace uses; written from the published algorithm
//! description (multiply-xorshift over 8-byte chunks).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// A fast, non-cryptographic hasher: for each word, xor-rotate-multiply.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("len 8")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"world"));
        assert_ne!(h(b"ab"), h(b"ba"));
    }
}
