//! Minimal vendored `crossbeam` scoped-thread API, implemented over
//! `std::thread::scope` (available since Rust 1.63, so the external
//! crate is no longer needed for this workspace's usage).

/// Scoped threads with crossbeam's calling convention.
pub mod thread {
    /// Propagated panic payload, as `std::thread::Result`.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to [`scope`]'s closure and to each spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle awaiting a scoped thread's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. Crossbeam passes the scope
        /// back into the closure (callers typically write `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing local data into threads is
    /// safe; all threads are joined before this returns. Unlike
    /// crossbeam, an unjoined panicking child aborts via std's scope
    /// panic instead of surfacing in the `Result` — callers here always
    /// join explicitly, where panics arrive as `Err` either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_borrows_and_joins() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_surfaces_in_join() {
        let caught = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(caught);
    }
}
