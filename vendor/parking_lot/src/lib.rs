//! Minimal vendored `parking_lot` API backed by `std::sync` primitives.
//!
//! Matches the crate's non-poisoning surface (`lock`/`read`/`write`
//! return guards directly). Poisoned std locks are recovered rather than
//! propagated, which matches parking_lot's behavior of not poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are infallible.
#[derive(Default, Debug)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
