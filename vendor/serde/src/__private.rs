//! Helpers called by `serde_derive`-generated code. Not public API.

use crate::{de, from_value, ser, to_value, DeserializeOwned, Serialize, Value};

/// Serialize one struct field / variant payload into a [`Value`].
pub fn ser_field<T: Serialize + ?Sized, E: ser::Error>(value: &T) -> Result<Value, E> {
    to_value(value).map_err(E::custom)
}

/// Expect an object, returning its pairs for field extraction.
pub fn into_object<E: de::Error>(value: Value, type_name: &str) -> Result<Vec<(String, Value)>, E> {
    match value {
        Value::Object(pairs) => Ok(pairs),
        v => Err(E::custom(format!(
            "invalid type: found {}, expected struct {type_name}",
            v.kind()
        ))),
    }
}

/// Expect an array of exactly `len` elements (tuple structs / variants).
pub fn into_array<E: de::Error>(value: Value, len: usize, type_name: &str) -> Result<Vec<Value>, E> {
    match value {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(E::custom(format!(
            "invalid length: {type_name} expects {len} elements, found {}",
            items.len()
        ))),
        v => Err(E::custom(format!(
            "invalid type: found {}, expected {type_name} as an array",
            v.kind()
        ))),
    }
}

/// Extract and deserialize a required named field. Unknown extra fields
/// are ignored, matching real serde's default.
pub fn de_field<T: DeserializeOwned, E: de::Error>(
    pairs: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, E> {
    match pairs.iter().position(|(k, _)| k == name) {
        Some(i) => {
            let (_, v) = pairs.swap_remove(i);
            from_value(v).map_err(|e| E::custom(format!("field `{name}`: {e}")))
        }
        None => Err(E::custom(format!("missing field `{name}`"))),
    }
}

/// Extract an optional named field, falling back to `Default`
/// (`#[serde(default)]`).
pub fn de_field_default<T: DeserializeOwned + Default, E: de::Error>(
    pairs: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, E> {
    match pairs.iter().position(|(k, _)| k == name) {
        Some(i) => {
            let (_, v) = pairs.swap_remove(i);
            from_value(v).map_err(|e| E::custom(format!("field `{name}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

/// Deserialize a single value (newtype payloads, tuple elements).
pub fn de_value<T: DeserializeOwned, E: de::Error>(value: Value) -> Result<T, E> {
    from_value(value).map_err(E::custom)
}
