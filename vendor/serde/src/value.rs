//! The self-describing data model used by this vendored serde.

/// A serialized value tree. Objects preserve insertion order (maps
/// serialize their own ordering; derived structs emit declaration
/// order), matching what `serde_json` would render.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` / unit / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (positives normalize to [`Value::U64`]).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    String(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Key/value pairs, in order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of this value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::U64(_) | Value::I64(_) => "an integer",
            Value::F64(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}
