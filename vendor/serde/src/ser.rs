//! Serialization-side support traits.

use std::fmt::Display;

/// The error contract every [`crate::Serializer`] error type satisfies.
pub trait Error: Sized + std::error::Error {
    /// Build an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}
