//! Minimal vendored `serde`-compatible framework for offline builds.
//!
//! The public trait surface matches the subset of real serde this
//! workspace uses — `Serialize`/`Serializer::serialize_str`,
//! `Deserialize`/`Deserializer::deserialize_str`, `de::Visitor`,
//! `ser::Error`/`de::Error` — so hand-written impls compile unchanged.
//! Internally the data model is simplified to a self-describing
//! [`Value`] tree: serializers accept a fully built `Value`
//! ([`Serializer::serialize_value`]) and deserializers surrender one
//! ([`Deserializer::take_value`]). The companion `serde_derive` and
//! `serde_json` stand-ins are written against that model; the derive
//! output is wire-compatible with real serde's default representation
//! (structs as objects, newtypes transparent, externally tagged enums).

use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;
mod value;

pub use value::Value;

#[doc(hidden)]
pub mod __private;

/// A type that can render itself into a serializer.
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized data. Simplified: one required method taking a
/// finished [`Value`]; the `serialize_*` conveniences build values.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Accept a fully built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::String(v.to_string()))
    }

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::U64(v))
    }

    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::I64(v))
    }

    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::F64(v))
    }

    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// A type that can rebuild itself from a deserializer.
pub trait Deserialize<'de>: Sized {
    /// Deserialize an instance.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A `Deserialize` usable at any lifetime (all types here own their
/// data).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A source of deserialized data. Simplified: one required method
/// surrendering a [`Value`]; the `deserialize_*` conveniences dispatch
/// into a [`de::Visitor`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Surrender the underlying value tree.
    fn take_value(self) -> Result<Value, Self::Error>;

    /// Drive `visitor` with the value, whatever its type.
    fn deserialize_any<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.take_value()? {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::U64(n) => visitor.visit_u64(n),
            Value::I64(n) => visitor.visit_i64(n),
            Value::F64(n) => visitor.visit_f64(n),
            Value::String(s) => visitor.visit_string(s),
            v @ (Value::Array(_) | Value::Object(_)) => Err(de::Error::custom(format!(
                "cannot visit {} with a scalar visitor",
                v.kind()
            ))),
        }
    }

    /// Expect a string and visit it.
    fn deserialize_str<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        match self.take_value()? {
            Value::String(s) => visitor.visit_str(&s),
            v => Err(de::Error::custom(format!("expected a string, found {}", v.kind()))),
        }
    }

    /// Alias of [`Deserializer::deserialize_str`].
    fn deserialize_string<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_str(visitor)
    }
}

/// The error produced by [`to_value`]/[`from_value`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

struct ValueDeserializer(Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serialize any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserialize any owned type out of a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => {
                let inner = to_value(v).map_err(ser::Error::custom)?;
                s.serialize_value(inner)
            }
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(ser::Error::custom)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(ser::Error::custom)?);
        }
        s.serialize_value(Value::Array(out))
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = match to_value(k).map_err(ser::Error::custom)? {
                Value::String(ks) => ks,
                other => {
                    return Err(ser::Error::custom(format!(
                        "map key must serialize to a string, got {}",
                        other.kind()
                    )))
                }
            };
            out.push((key, to_value(v).map_err(ser::Error::custom)?));
        }
        s.serialize_value(Value::Object(out))
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let out = vec![$(to_value(&self.$idx).map_err(ser::Error::custom)?),+];
                s.serialize_value(Value::Array(out))
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| de::Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| de::Error::custom(format!("{n} out of range for {}", stringify!($t)))),
                    v => Err(de::Error::custom(format!(
                        "expected an integer, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            v => Err(de::Error::custom(format!("expected a boolean, found {}", v.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::F64(n) => Ok(n),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            v => Err(de::Error::custom(format!("expected a number, found {}", v.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::String(s) => Ok(s),
            v => Err(de::Error::custom(format!("expected a string, found {}", v.kind()))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(de::Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(de::Error::custom))
                .collect(),
            v => Err(de::Error::custom(format!("expected an array, found {}", v.kind()))),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        from_value(d.take_value()?).map(Box::new).map_err(de::Error::custom)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Arc<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        from_value(d.take_value()?).map(Arc::new).map_err(de::Error::custom)
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(de::Error::custom))
                .collect(),
            v => Err(de::Error::custom(format!("expected an array, found {}", v.kind()))),
        }
    }
}

impl<'de, K: DeserializeOwned + Ord, V: DeserializeOwned> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Object(pairs) => pairs
                .into_iter()
                .map(|(k, v)| {
                    let key = from_value(Value::String(k)).map_err(de::Error::custom)?;
                    let val = from_value(v).map_err(de::Error::custom)?;
                    Ok((key, val))
                })
                .collect(),
            v => Err(de::Error::custom(format!("expected an object, found {}", v.kind()))),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:expr, $($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.take_value()? {
                    Value::Array(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            from_value::<$name>(it.next().expect("length checked"))
                                .map_err(de::Error::custom)?,
                        )+))
                    }
                    Value::Array(items) => Err(de::Error::custom(format!(
                        "expected an array of {} elements, found {}", $len, items.len()
                    ))),
                    v => Err(de::Error::custom(format!(
                        "expected an array, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (1, A)
    (2, A, B)
    (3, A, B, C)
    (4, A, B, C, D)
}
