//! Deserialization-side support traits.

use std::fmt::{self, Display};

/// The error contract every [`crate::Deserializer`] error type
/// satisfies.
pub trait Error: Sized + std::error::Error {
    /// Build an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// Drives construction of a value out of deserializer callbacks. Only
/// the shapes this workspace's hand-written impls use are modeled;
/// every `visit_*` defaults to a type-mismatch error built from
/// [`Visitor::expecting`].
pub trait Visitor<'de>: Sized {
    /// The type this visitor produces.
    type Value;

    /// Describe what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visit a borrowed string.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "a string"))
    }

    /// Visit an owned string (defaults to [`Visitor::visit_str`]).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visit a boolean.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "a boolean"))
    }

    /// Visit an unsigned integer.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "an integer"))
    }

    /// Visit a signed integer.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "an integer"))
    }

    /// Visit a float.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(unexpected(&self, "a number"))
    }

    /// Visit a unit/null value.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(unexpected(&self, "null"))
    }
}

fn unexpected<'de, V: Visitor<'de>, E: Error>(visitor: &V, found: &str) -> E {
    struct Expected<'a, 'de, V: Visitor<'de>>(&'a V, std::marker::PhantomData<&'de ()>);
    impl<'de, V: Visitor<'de>> Display for Expected<'_, 'de, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    E::custom(format!(
        "invalid type: found {found}, expected {}",
        Expected(visitor, std::marker::PhantomData)
    ))
}
