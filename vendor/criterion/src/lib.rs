//! Minimal vendored `criterion` API: enough to compile and usefully run
//! this workspace's benches offline. Each `bench_function` performs a
//! short warmup, then `sample_size` timed iterations, and prints mean ±
//! sample standard deviation. No HTML reports, plotting, or statistics
//! beyond that.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) -> &mut Self {
        run_bench(&name.into(), 100, f);
        self
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name.into()), self.sample_size, f);
        self
    }

    /// End the group (kept for API compatibility; a no-op here).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Time `rounds` invocations of `f`, recording one sample per round.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.rounds {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warmup: one untimed round.
    let mut warm = Bencher { samples: Vec::new(), rounds: 1 };
    f(&mut warm);
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        rounds: sample_size,
    };
    f(&mut b);
    let ms: Vec<f64> = b.samples.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    let n = ms.len().max(1) as f64;
    let mean = ms.iter().sum::<f64>() / n;
    let var = if ms.len() > 1 {
        ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    println!("{name:<50} {mean:>10.3} ms ± {:>8.3} ({} samples)", var.sqrt(), ms.len());
}

/// Declare the benchmark groups of this target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 10);
    }
}
